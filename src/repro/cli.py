"""Command-line interface.

Eight subcommands mirror the paper's workflow::

    repro run      --strategy zero2 --size 1.4 --nodes 1     # one training run
    repro run      --strategy ddp --trace out.json           # + Perfetto trace
    repro campaign run --experiment fig7 --workers 4         # cached sweeps
    repro campaign status                                    # cache integrity
    repro campaign gc                                        # drop stale objects
    repro search   --strategy zero3 --nodes 2                # max model size
    repro stress   --duration 10                             # Fig. 3/4 tests
    repro topology --nodes 2 --placement G [--json]          # Fig. 2 wiring
    repro experiment fig7 [--full]                           # any table/figure
    repro analyze  --strategy zero3_nvme --size 20           # pre-run lints
    repro faults   --strategy zero3 \
                   --fault "node0.nic0:down@t=2ms,dur=1ms" --seed 7
                                                  # degraded-fabric run
    repro cluster run --policy sjf --rate-per-hour 2400 \
                   --jobs 20 --leak-check           # multi-tenant service
    repro trace diff a.json b.json                # compare two traces
    repro trace summary out.json                  # span/byte summary
    repro trace check out.json                    # schema validation

Installed as the ``repro`` console script; also runnable via
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis import (
    Severity,
    analyze_dimensions,
    analyze_lifecycle,
    analyze_run_config,
    analyze_source,
    apply_baseline,
    code_owners,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)
from .api import RunSpec, run_spec
from .core.results import metrics_to_dict
from .core.runner import run_training
from .core.search import max_model_size, model_for_billions
from .errors import ReproError
from .experiments import EXPERIMENTS, run_experiment
from .experiments.common import ALL_STRATEGIES, make_strategy
from .faults import FaultPlan, degradation_report
from .telemetry.bandwidth import BandwidthMonitor
from .hardware import Cluster, ClusterSpec, dual_node_cluster, single_node_cluster
from .inference import BATCHING_POLICIES, REQUEST_MIXES
from .hardware.render import render_cluster, render_cluster_json
from .parallel.placement import PLACEMENTS
from .stress import full_stress_suite, latency_sweep
from .telemetry.report import format_table
from .units import GB, to_billion


def _cluster_for(args: argparse.Namespace) -> Cluster:
    placement = PLACEMENTS[args.placement]
    strategy_name = getattr(args, "strategy", "")
    if "nvme" in strategy_name:
        return Cluster(ClusterSpec(num_nodes=args.nodes,
                                   node=placement.node_spec()))
    return single_node_cluster() if args.nodes == 1 else dual_node_cluster()


def _serve_and_render(spec, args: argparse.Namespace) -> int:
    """Run one InferenceSpec and render its serving report."""
    run = spec.run()
    report = run.report
    if args.leak_check:
        assert report.leaks is not None
        report.leaks.assert_clean()
        print(f"leak sanitizer: clean "
              f"({report.leaks.pools_audited} pools, "
              f"{report.leaks.ledgers_audited} ledgers, "
              f"{report.leaks.flows_tracked} flows audited)",
              file=sys.stderr)
    if args.trace is not None:
        from .trace import write_trace
        assert run.trace is not None
        write_trace(run.trace, args.trace)
        print(f"serving trace written: {args.trace} "
              f"({len(run.trace.spans)} spans, "
              f"{len(run.trace.flows)} flows, "
              f"{len(run.trace.links)} links)",
              file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(format_table(
            ["metric", "value"],
            [["spec", report.spec_label],
             ["batching", report.batching],
             ["nodes x GPUs (TP)", f"{report.nodes} x {report.num_gpus}"],
             ["requests (done/all)",
              f"{report.requests_completed}/{report.requests_submitted}"],
             ["TTFT p50/p99 (s)",
              f"{report.ttft_p50_s:.4f}/{report.ttft_p99_s:.4f}"],
             ["TPOT p50/p99 (s)",
              f"{report.tpot_p50_s:.4f}/{report.tpot_p99_s:.4f}"],
             ["queue wait p50/p99 (s)",
              f"{report.queue_wait_p50_s:.4f}"
              f"/{report.queue_wait_p99_s:.4f}"],
             ["goodput (req/s | tok/s)",
              f"{report.goodput_requests_per_s:.2f} | "
              f"{report.goodput_tokens_per_s:.1f}"],
             ["SLO attainment", round(report.slo_attainment, 4)],
             ["KV peak / budget (GB)",
              f"{report.kv_peak_bytes / GB:.2f}"
              f"/{report.kv_budget_bytes / GB:.2f}"],
             ["makespan (s)", round(report.total_time_s, 3)],
             ["cache key", spec.cache_key()[:16]]],
            title="inference serving run",
        ))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .inference import InferenceSpec

    spec = InferenceSpec(
        size_billions=args.size,
        gpus=args.gpus,
        nodes=args.nodes,
        rate_per_second=args.rate,
        num_requests=args.requests,
        arrival_seed=args.seed,
        request_mix=args.mix,
        batching=args.batching,
        max_batch_tokens=args.max_batch_tokens,
        max_batch_requests=args.max_batch_requests,
        kv_fraction=args.kv_fraction,
        slo_ttft_s=args.slo_ttft,
        slo_tpot_s=args.slo_tpot,
        trace=args.trace is not None,
        leak_check=args.leak_check,
    )
    return _serve_and_render(spec, args)


def _cmd_run(args: argparse.Namespace) -> int:
    if args.workload == "inference":
        # The workload-polymorphic path: the same flags select an
        # InferenceSpec (iterations becomes the request count); the
        # full serving surface lives under `repro serve`.
        from .inference import InferenceSpec

        spec = InferenceSpec(
            size_billions=args.size,
            nodes=args.nodes,
            num_requests=args.iterations,
            trace=args.trace is not None,
            leak_check=args.leak_check,
        )
        return _serve_and_render(spec, args)
    spec = RunSpec(
        strategy=args.strategy,
        size_billions=args.size,
        nodes=args.nodes,
        placement=args.placement,
        iterations=args.iterations,
        trace=args.trace is not None,
        leak_check=args.leak_check,
        fidelity=args.fidelity,
    )
    metrics = run_spec(spec)
    if args.leak_check:
        assert metrics.leaks is not None
        metrics.leaks.assert_clean()
        print(f"leak sanitizer: clean "
              f"({metrics.leaks.pools_audited} pools, "
              f"{metrics.leaks.ledgers_audited} ledgers, "
              f"{metrics.leaks.flows_tracked} flows audited)",
              file=sys.stderr)
    if args.trace is not None:
        from .trace import write_trace
        assert metrics.trace is not None
        write_trace(metrics.trace, args.trace)
        print(f"trace written: {args.trace} "
              f"({len(metrics.trace.spans)} spans, "
              f"{len(metrics.trace.flows)} flows, "
              f"{len(metrics.trace.links)} links) — load it in "
              f"https://ui.perfetto.dev or chrome://tracing",
              file=sys.stderr)
    payload = metrics_to_dict(metrics)
    if args.json:
        # The same machine-readable schema `save_metrics` writes and the
        # campaign cache stores (core.results.SCHEMA_VERSION).
        print(json.dumps(payload, indent=2))
    else:
        memory = payload["memory_bytes"]
        print(format_table(
            ["metric", "value"],
            [["strategy", payload["strategy"]],
             ["model (B params)",
              round(to_billion(payload["model_parameters"]), 3)],
             ["nodes x GPUs", f"{payload['nodes']} x {payload['gpus']}"],
             ["TFLOP/s", round(payload["tflops"], 1)],
             ["iteration (s)", round(payload["iteration_seconds"], 4)],
             ["GPU / CPU / NVMe (GB)",
              " / ".join(f"{memory[tier] / GB:.1f}"
                         for tier in ("gpu", "cpu", "nvme"))],
             ["cache key", spec.cache_key()[:16]]],
            title="training run",
        ))
        print()
        print(format_table(
            ["interconnect", "avg GB/s"],
            [[cls, round(stats["avg"], 2)]
             for cls, stats in sorted(payload["bandwidth_gbps"].items())],
        ))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from .campaign import (
        CampaignSpec,
        ResultCache,
        load_campaign,
        run_campaign,
    )

    if args.campaign_command == "status":
        cache = ResultCache(args.cache_dir)
        stats = cache.stats()
        findings = cache.verify()
        if args.json:
            print(json.dumps({
                "stats": stats,
                "findings": [f.to_dict() for f in findings],
            }, indent=2))
        else:
            print(f"cache {stats['root']}: {stats['objects']} objects, "
                  f"{stats['bytes']} bytes")
            for label, count in sorted(stats["by_salt"].items()):
                print(f"  {label}: {count}")
            for finding in findings:
                print(f"  [{finding.code}] {finding.message} "
                      f"({finding.location})")
            print("integrity: " + ("ok" if not findings
                                   else f"{len(findings)} problem(s)"))
        return 0 if not findings else 1

    if args.campaign_command == "gc":
        cache = ResultCache(args.cache_dir)
        counts = cache.gc()
        print(f"gc {args.cache_dir}: kept {counts['kept']}, removed "
              f"{counts['removed_stale']} stale + "
              f"{counts['removed_corrupt']} corrupt object(s)")
        return 0

    # campaign run
    if args.spec:
        campaign = load_campaign(args.spec)
    else:
        campaign = CampaignSpec(
            name=args.name,
            experiments=tuple(args.experiment or ()),
            strategies=tuple(args.strategy or ()),
            sizes_billions=tuple(args.size or ()),
            nodes=tuple(args.nodes or (1,)),
            placement=args.placement,
            iterations=args.iterations,
            full=args.full,
        )
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    report = run_campaign(
        campaign, workers=args.workers, cache=cache,
        progress=lambda message: print(message, file=sys.stderr),
    )
    if args.report:
        report.save(args.report)
        print(f"report written: {args.report}", file=sys.stderr)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
        for job in report.jobs:
            source = "cache " if job.cached else f"{job.elapsed_s:5.1f}s"
            print(f"  [{source}] {job.job_id}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    from .cluster import ClusterScenario, run_cluster

    if args.arrivals == "poisson":
        scenario = ClusterScenario(
            name=args.name,
            nodes=args.nodes,
            policy=args.policy,
            arrivals="poisson",
            rate_per_hour=args.rate_per_hour,
            num_jobs=args.jobs,
            arrival_seed=args.seed,
            mix=args.mix,
            aging_rate=args.aging,
            leak_check=args.leak_check,
            trace=args.trace is not None,
        )
    else:
        from .errors import ConfigurationError
        try:
            with open(args.arrivals, "r", encoding="utf-8") as handle:
                entries = json.load(handle)
        except OSError as error:
            raise ConfigurationError(
                f"cannot read arrivals trace {args.arrivals!r}: "
                f"{error.strerror or error}") from error
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"arrivals trace {args.arrivals!r} is not valid JSON: "
                f"{error}") from error
        if not isinstance(entries, list):
            raise ConfigurationError(
                f"arrivals trace {args.arrivals!r} must be a JSON list "
                f"of job entries, got {type(entries).__name__}")
        scenario = ClusterScenario(
            name=args.name,
            nodes=args.nodes,
            policy=args.policy,
            arrivals="trace",
            trace_jobs=tuple(entries),
            aging_rate=args.aging,
            leak_check=args.leak_check,
            trace=args.trace is not None,
        )
    run = run_cluster(scenario)
    report = run.report
    if args.leak_check:
        assert report.leaks is not None
        report.leaks.assert_clean()
        print(f"leak sanitizer: clean "
              f"({report.leaks.pools_audited} pools, "
              f"{report.leaks.ledgers_audited} ledgers, "
              f"{report.leaks.flows_tracked} flows audited)",
              file=sys.stderr)
    if args.trace is not None:
        from .trace import write_trace
        assert run.trace is not None
        write_trace(run.trace, args.trace)
        print(f"cluster trace written: {args.trace} "
              f"({len(run.trace.spans)} spans, "
              f"{len(run.trace.flows)} flows, "
              f"{len(run.trace.links)} links)",
              file=sys.stderr)
    payload = report.to_dict()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(format_table(
            ["metric", "value"],
            [["policy", report.policy],
             ["nodes x GPUs", f"{report.nodes} x {report.num_gpus}"],
             ["jobs (done/failed/all)",
              f"{report.jobs_completed}/{report.jobs_failed}"
              f"/{report.jobs_submitted}"],
             ["preemptions", report.preemptions],
             ["goodput (jobs/h)",
              round(report.goodput_jobs_per_hour, 2)],
             ["queue wait p50/p99 (s)",
              f"{report.queue_wait_p50_s:.3f}"
              f"/{report.queue_wait_p99_s:.3f}"],
             ["max in system", report.max_in_system_jobs],
             ["cluster utilization",
              round(report.cluster_utilization, 4)],
             ["makespan (s)", round(report.total_time_s, 3)]],
            title=f"cluster service: {report.scenario}",
        ))
        print()
        print(format_table(
            ["tenant", "jobs", "gpu-s", "util", "preempt"],
            [[name,
              account["jobs_completed"],
              round(float(account["gpu_seconds"]), 2),
              account["utilization"],
              account["preemptions"]]
             for name, account in sorted(report.tenants.items())],
        ))
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    strategy = make_strategy(args.strategy)
    cluster = _cluster_for(args)
    result = max_model_size(cluster, strategy,
                            placement=PLACEMENTS[args.placement])
    if args.json:
        print(json.dumps({
            "strategy": strategy.name,
            "nodes": args.nodes,
            "max_layers": result.max_layers,
            "max_billions": round(result.billions, 3),
            "paper_grid_billions": result.grid_parameters,
        }, indent=2))
    else:
        print(f"{strategy.display_name} on {args.nodes} node(s): "
              f"{result.billions:.2f} B parameters "
              f"({result.max_layers} layers)")
    return 0


def _cmd_stress(args: argparse.Namespace) -> int:
    cluster = dual_node_cluster()
    suite = full_stress_suite(cluster, duration=args.duration)
    rows = []
    for (kind, placement), result in suite.items():
        rows.append([kind.value, placement.value,
                     f"{result.roce_average_gbps:.1f}",
                     f"{result.attained_fraction() * 100:.0f}%"])
    print(format_table(
        ["test", "placement", "RoCE avg GB/s", "attained"],
        rows, title="Fig. 4 — inter-node bandwidth stress test",
    ))
    sweep = latency_sweep(dual_node_cluster())
    small = [
        (verb.value, placement.value,
         max(s.latency_us for s in samples if s.message_bytes < 65536))
        for (verb, placement), samples in sweep.items()
    ]
    print()
    print(format_table(
        ["verb", "placement", "max latency <64kB (us)"],
        [[v, p, f"{lat:.1f}"] for v, p, lat in small],
        title="Fig. 3 — RoCE latency",
    ))
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    placement = PLACEMENTS[args.placement]
    cluster = Cluster(ClusterSpec(num_nodes=args.nodes,
                                  node=placement.node_spec()))
    if args.json:
        print(json.dumps(render_cluster_json(cluster), indent=2))
    else:
        print(render_cluster(cluster))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from .trace import (
        diff_traces,
        load_document,
        load_trace,
        summarize,
        trace_from_document,
        validate_chrome_trace,
    )
    if args.trace_command == "diff":
        diff = diff_traces(load_trace(args.a), load_trace(args.b))
        print(diff.render())
        return 0 if diff.clean else 1
    if args.trace_command == "summary":
        summary = summarize(load_trace(args.path))
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    # check: Chrome Trace schema validation + native-schema readability
    doc = load_document(args.path)
    problems = validate_chrome_trace(doc)
    trace = trace_from_document(doc)
    if problems:
        for problem in problems:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    print(f"{args.path}: valid ({len(trace.spans)} spans, "
          f"{len(trace.flows)} flows, {len(trace.collectives)} collectives, "
          f"{len(trace.links)} link accounts, "
          f"{len(trace.counters)} counter tracks)")
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if sum((args.self, args.sanitize, args.dims, args.lifecycle)) > 1:
        print("error: --self, --dims, --lifecycle, and --sanitize are "
              "mutually exclusive", file=sys.stderr)
        return 2
    diff_result = None
    if args.sanitize:
        # Deferred: the differ pulls in the training runner, which the
        # static-only paths never need.
        from .analysis.determinism.differ import perturbation_diff
        diff_result = perturbation_diff(
            args.strategy, size_billions=args.size, nodes=args.nodes,
            placement=args.placement, iterations=args.iterations,
            seed=args.seed,
        )
        report = diff_result.report()
    elif args.self:
        report = analyze_source()
    elif args.dims:
        report = analyze_dimensions()
    elif args.lifecycle:
        report = analyze_lifecycle(root=args.root)
    else:
        strategy = make_strategy(args.strategy)
        cluster = _cluster_for(args)
        model = model_for_billions(args.size)
        report = analyze_run_config(
            cluster, strategy, model,
            placement=PLACEMENTS[args.placement],
            tensor_parallel=args.tensor_parallel,
            pipeline_parallel=args.pipeline_parallel,
        )

    if args.update_baseline:
        if not args.baseline:
            print("error: --update-baseline requires --baseline PATH",
                  file=sys.stderr)
            return 2
        write_baseline(report, args.baseline)
        print(f"baseline written: {args.baseline} "
              f"({len(report.findings)} accepted findings)")
        return 0
    if args.baseline:
        report, stale = apply_baseline(report, load_baseline(args.baseline))
        owners = code_owners()
        for entry in stale:
            owner = owners.get(entry.code)
            if owner is not None and owner not in report.passes_run:
                # A pass that did not run cannot vouch for staleness: a
                # dims-only invocation must not call DET entries stale.
                continue
            print(f"note: stale baseline entry matched nothing: "
                  f"{entry.code} in {entry.file}", file=sys.stderr)

    if args.json:
        payload = report.to_dict()
        if diff_result is not None:
            payload["perturbation_diff"] = diff_result.to_dict()
        print(json.dumps(payload, indent=2))
    else:
        print(render_text(report))
        if diff_result is not None:
            verdict = ("RACES CONFIRMED" if diff_result.races_confirmed
                       else "no divergence")
            sanitizer = diff_result.sanitizer
            suspects = (sanitizer.conflict_groups
                        if sanitizer is not None else 0)
            print(f"perturbation diff [{diff_result.strategy}]: "
                  f"{diff_result.fields_compared} fields x "
                  f"{len(diff_result.orders)} perturbed orders "
                  f"({', '.join(diff_result.orders)}): {verdict}; "
                  f"{suspects} suspect tie groups")
    threshold = (Severity.WARNING if args.fail_on == "warning"
                 else Severity.ERROR)
    return report.exit_code_at(threshold)


def _cmd_faults(args: argparse.Namespace) -> int:
    plan = FaultPlan.parse(args.fault, seed=args.seed, horizon=args.horizon)
    model = model_for_billions(args.size)
    placement = PLACEMENTS[args.placement]

    baseline_cluster = _cluster_for(args)
    baseline = run_training(baseline_cluster, make_strategy(args.strategy),
                            model, iterations=args.iterations,
                            placement=placement)
    faulted_cluster = _cluster_for(args)
    faulted = run_training(faulted_cluster, make_strategy(args.strategy),
                           model, iterations=args.iterations,
                           placement=placement, fault_plan=plan)
    report = degradation_report(
        baseline, faulted, plan,
        monitor=BandwidthMonitor(faulted_cluster),
    )
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(format_table(
            ["metric", "baseline", "faulted"],
            [["iteration (s)", report["baseline"]["iteration_time_s"],
              report["faulted"]["iteration_time_s"]],
             ["TFLOP/s", report["baseline"]["tflops_per_gpu"],
              report["faulted"]["tflops_per_gpu"]],
             ["total time (s)", report["baseline"]["total_time_s"],
              report["faulted"]["total_time_s"]]],
            title=f"degraded-fabric run: {args.strategy} (seed {plan.seed})",
        ))
        print()
        print(f"slowdown: {report['slowdown']:.4g}x   "
              f"throughput retained: {report['throughput_retained']:.1%}")
        for event in plan.events:
            print(f"  fault: {event.kind} on {event.target} "
                  f"@ {event.start:.6g}s for {event.duration:.6g}s "
                  f"(magnitude {event.magnitude:g})")
        windows = report.get("degraded_windows", {})
        for cls, spans in sorted(windows.items()):
            joined = ", ".join(f"[{s:.4g}, {e:.4g}]" for s, e in spans)
            print(f"  degraded {cls}: {joined}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = run_experiment(args.id, quick=not args.full)
    print(result.rendered)
    if args.json:
        print()
        print(json.dumps(result.rows, indent=2, default=str))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulator reproduction of the ISPASS'24 DeepSpeed "
                    "bandwidth characterization study",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="simulate one training (or inference) configuration")
    run.add_argument("--workload", choices=("train", "inference"),
                     default="train",
                     help="which Workload to run; 'inference' maps "
                          "--size/--nodes/--iterations onto an "
                          "InferenceSpec (see `repro serve` for the "
                          "full serving surface)")
    run.add_argument("--strategy", choices=sorted(ALL_STRATEGIES),
                     default="zero2")
    run.add_argument("--size", type=float, default=1.4,
                     help="model size in billions of parameters")
    run.add_argument("--nodes", type=int, default=1, choices=(1, 2))
    run.add_argument("--iterations", type=int, default=4)
    run.add_argument("--fidelity", choices=("full", "hybrid"),
                     default="full",
                     help="hybrid simulates a steady window and "
                          "extrapolates the remaining iterations "
                          "(falls back to full when not steady)")
    run.add_argument("--placement", choices=sorted(PLACEMENTS), default="B")
    run.add_argument("--leak-check", action="store_true",
                     help="attach the runtime leak sanitizer and fail "
                          "the run on outstanding pool/ledger balance "
                          "at teardown")
    run.add_argument("--trace", default=None, metavar="PATH",
                     help="record a structured execution trace and write "
                          "it as Perfetto-loadable Chrome Trace JSON")
    run.add_argument("--json", action="store_true",
                     help="emit the full machine-readable RunMetrics "
                          "summary (same schema as save_metrics)")
    run.set_defaults(func=_cmd_run)

    serve = sub.add_parser(
        "serve", help="simulate one inference serving run "
                      "(continuous batching on the shared fabric model)")
    serve.add_argument("--size", type=float, default=1.4,
                       help="model size in billions of parameters")
    serve.add_argument("--gpus", type=int, default=4,
                       help="tensor-parallel degree of the instance")
    serve.add_argument("--nodes", type=int, default=1,
                       help="nodes the TP group spans")
    serve.add_argument("--rate", type=float, default=4.0,
                       help="open-loop Poisson arrival rate (requests/s)")
    serve.add_argument("--requests", type=int, default=32,
                       help="number of requests to serve")
    serve.add_argument("--seed", type=int, default=7,
                       help="arrival-stream seed")
    serve.add_argument("--mix", choices=sorted(REQUEST_MIXES),
                       default="chat",
                       help="request length mix")
    serve.add_argument("--batching", choices=BATCHING_POLICIES,
                       default="continuous")
    serve.add_argument("--max-batch-tokens", type=int, default=8192)
    serve.add_argument("--max-batch-requests", type=int, default=16)
    serve.add_argument("--kv-fraction", type=float, default=0.9,
                       help="fraction of post-weights free GPU memory "
                            "given to the KV-cache budget")
    serve.add_argument("--slo-ttft", type=float, default=1.0,
                       help="TTFT SLO target (seconds)")
    serve.add_argument("--slo-tpot", type=float, default=0.2,
                       help="TPOT SLO target (seconds)")
    serve.add_argument("--leak-check", action="store_true",
                       help="audit KV/weights byte conservation at "
                            "teardown")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="write the serving trace as Chrome Trace "
                            "JSON")
    serve.add_argument("--json", action="store_true",
                       help="emit the full InferenceReport payload")
    serve.set_defaults(func=_cmd_serve)

    campaign = sub.add_parser(
        "campaign", help="run cached experiment sweeps on a worker pool")
    campaign_sub = campaign.add_subparsers(dest="campaign_command",
                                           required=True)
    campaign_run = campaign_sub.add_parser(
        "run", help="expand a sweep into jobs and execute them through "
                    "the result cache")
    campaign_run.add_argument("--spec", default=None, metavar="PATH",
                              help="JSON campaign spec file (overrides "
                                   "the sweep flags below)")
    campaign_run.add_argument("--name", default="campaign")
    campaign_run.add_argument("--experiment", action="append",
                              choices=sorted(EXPERIMENTS), metavar="ID",
                              help="experiment id to include; repeatable")
    campaign_run.add_argument("--strategy", action="append",
                              choices=sorted(ALL_STRATEGIES),
                              metavar="NAME",
                              help="strategy for the run sweep; repeatable")
    campaign_run.add_argument("--size", action="append", type=float,
                              metavar="BILLIONS",
                              help="model size for the run sweep; "
                                   "repeatable")
    campaign_run.add_argument("--nodes", action="append", type=int,
                              metavar="N",
                              help="node count for the run sweep; "
                                   "repeatable (default 1)")
    campaign_run.add_argument("--placement", choices=sorted(PLACEMENTS),
                              default="B")
    campaign_run.add_argument("--iterations", type=int, default=3)
    campaign_run.add_argument("--full", action="store_true",
                              help="paper-length profiles instead of "
                                   "quick ones")
    campaign_run.add_argument("--workers", type=int, default=1,
                              help="worker processes (1 = inline)")
    campaign_run.add_argument("--cache-dir", default=".repro-cache",
                              help="content-addressed result cache "
                                   "directory")
    campaign_run.add_argument("--no-cache", action="store_true",
                              help="recompute everything; don't read or "
                                   "write the cache")
    campaign_run.add_argument("--report", default=None, metavar="PATH",
                              help="write the campaign report as JSON")
    campaign_run.add_argument("--json", action="store_true")
    campaign_status = campaign_sub.add_parser(
        "status", help="cache statistics and integrity verification "
                       "(CMP0xx findings)")
    campaign_status.add_argument("--cache-dir", default=".repro-cache")
    campaign_status.add_argument("--json", action="store_true")
    campaign_gc = campaign_sub.add_parser(
        "gc", help="remove corrupt objects and objects cached by other "
                   "code versions")
    campaign_gc.add_argument("--cache-dir", default=".repro-cache")
    campaign.set_defaults(func=_cmd_campaign)

    cluster = sub.add_parser(
        "cluster", help="multi-tenant cluster service over the shared DES")
    cluster_sub = cluster.add_subparsers(dest="cluster_command",
                                         required=True)
    cluster_run = cluster_sub.add_parser(
        "run", help="admit a stream of jobs onto a shared N-node fabric")
    cluster_run.add_argument("--name", default="cluster")
    cluster_run.add_argument("--nodes", type=int, default=4,
                             help="fabric size (any N >= 1)")
    cluster_run.add_argument("--policy",
                             choices=("fifo", "sjf", "memory-aware"),
                             default="fifo")
    cluster_run.add_argument("--arrivals", default="poisson",
                             metavar="poisson|FILE.json",
                             help="'poisson' for a seeded open-loop "
                                  "stream, or a JSON trace file of "
                                  "{time, ...JobSpec} entries")
    cluster_run.add_argument("--rate-per-hour", type=float, default=1200.0,
                             help="Poisson arrival rate (jobs/hour)")
    cluster_run.add_argument("--jobs", type=int, default=12,
                             help="number of Poisson arrivals")
    cluster_run.add_argument("--seed", type=int, default=7,
                             help="arrival-stream seed")
    cluster_run.add_argument("--mix", default="default",
                             help="named job mix for Poisson arrivals")
    cluster_run.add_argument("--aging", type=float, default=0.0,
                             help="priority gained per queued second")
    cluster_run.add_argument("--leak-check", action="store_true",
                             help="audit byte conservation across all "
                                  "jobs' shared pools and ledgers")
    cluster_run.add_argument("--trace", default=None, metavar="PATH",
                             help="write the shared-machine cluster "
                                  "trace as Chrome Trace JSON")
    cluster_run.add_argument("--json", action="store_true",
                             help="emit the full ClusterReport payload")
    cluster.set_defaults(func=_cmd_cluster)

    search = sub.add_parser("search", help="largest model that fits")
    search.add_argument("--strategy", choices=sorted(ALL_STRATEGIES),
                        default="zero3")
    search.add_argument("--nodes", type=int, default=1, choices=(1, 2))
    search.add_argument("--placement", choices=sorted(PLACEMENTS),
                        default="B")
    search.add_argument("--json", action="store_true")
    search.set_defaults(func=_cmd_search)

    stress = sub.add_parser("stress", help="Fig. 3/4 stress tests")
    stress.add_argument("--duration", type=float, default=5.0)
    stress.set_defaults(func=_cmd_stress)

    topology = sub.add_parser("topology", help="render the cluster wiring")
    topology.add_argument("--nodes", type=int, default=2, choices=(1, 2))
    topology.add_argument("--placement", choices=sorted(PLACEMENTS),
                          default="B")
    topology.add_argument("--json", action="store_true",
                          help="emit the wiring as structured JSON "
                               "(devices, links, bandwidths)")
    topology.set_defaults(func=_cmd_topology)

    trace = sub.add_parser(
        "trace", help="inspect, validate, and compare exported traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    trace_diff = trace_sub.add_parser(
        "diff", help="field-compare two traces (span counts, busy "
                     "times, per-link bytes, counter integrals)")
    trace_diff.add_argument("a")
    trace_diff.add_argument("b")
    trace_summary = trace_sub.add_parser(
        "summary", help="print a trace's flattened summary table")
    trace_summary.add_argument("path")
    trace_check = trace_sub.add_parser(
        "check", help="validate a trace file against the Chrome Trace "
                      "Event schema rules")
    trace_check.add_argument("path")
    trace.set_defaults(func=_cmd_trace)

    experiment = sub.add_parser("experiment",
                                help="reproduce one table/figure")
    experiment.add_argument("id", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--full", action="store_true")
    experiment.add_argument("--json", action="store_true")
    experiment.set_defaults(func=_cmd_experiment)

    faults = sub.add_parser(
        "faults", help="simulate a run on a degraded fabric and report "
                       "the graceful-degradation curve")
    faults.add_argument("--strategy", choices=sorted(ALL_STRATEGIES),
                        default="zero3")
    faults.add_argument("--fault", action="append", required=True,
                        metavar="SPEC",
                        help="fault spec 'target:kind@t=2ms,dur=1ms"
                             "[,mag=0.5][,period=5ms]'; repeatable; kinds: "
                             "down, degrade, flap, straggler, nvme_slow")
    faults.add_argument("--seed", type=int, default=0,
                        help="seed for flap-jitter reproducibility")
    faults.add_argument("--horizon", type=float, default=None,
                        help="optional simulated-time bound the lint "
                             "checks fault windows against (seconds)")
    faults.add_argument("--size", type=float, default=1.4,
                        help="model size in billions of parameters")
    faults.add_argument("--nodes", type=int, default=2, choices=(1, 2))
    faults.add_argument("--iterations", type=int, default=4)
    faults.add_argument("--placement", choices=sorted(PLACEMENTS),
                        default="B")
    faults.add_argument("--json", action="store_true")
    faults.set_defaults(func=_cmd_faults)

    analyze = sub.add_parser(
        "analyze", help="static pre-run analysis of one configuration")
    analyze.add_argument("--strategy", choices=sorted(ALL_STRATEGIES),
                         default="zero2")
    analyze.add_argument("--size", type=float, default=1.4,
                         help="model size in billions of parameters")
    analyze.add_argument("--nodes", type=int, default=1, choices=(1, 2))
    analyze.add_argument("--placement", choices=sorted(PLACEMENTS),
                         default="B")
    analyze.add_argument("--tensor-parallel", type=int, default=None,
                         help="lint an explicit tensor-parallel degree")
    analyze.add_argument("--pipeline-parallel", type=int, default=None,
                         help="lint an explicit pipeline-parallel degree")
    analyze.add_argument("--self", action="store_true",
                         help="run the source lints (unit hygiene + "
                              "DET0xx determinism hazards) over the "
                              "simulator's own source instead")
    analyze.add_argument("--dims", action="store_true",
                         help="run the interprocedural dimensional "
                              "analysis (DIM0xx unit checks) over the "
                              "simulator's own source instead")
    analyze.add_argument("--lifecycle", action="store_true",
                         help="run the resource-lifecycle typestate "
                              "passes (RES0xx leak/double-free checks) "
                              "over the simulator's own source instead")
    analyze.add_argument("--root", default=None, metavar="DIR",
                         help="alternative source tree for --lifecycle "
                              "(defaults to the installed repro package)")
    analyze.add_argument("--sanitize", action="store_true",
                         help="run the configuration under the schedule "
                              "sanitizer and diff it across legal "
                              "tie-order perturbations (race detector)")
    analyze.add_argument("--seed", type=int, default=7,
                         help="seed for the shuffled tie order "
                              "(--sanitize)")
    analyze.add_argument("--iterations", type=int, default=2,
                         help="simulated iterations per sanitized run "
                              "(--sanitize)")
    analyze.add_argument("--fail-on", choices=("error", "warning"),
                         default="error",
                         help="lowest severity that makes the exit "
                              "status non-zero")
    analyze.add_argument("--baseline", default=None, metavar="PATH",
                         help="JSON baseline of accepted findings to "
                              "filter out")
    analyze.add_argument("--update-baseline", action="store_true",
                         help="write the current findings to --baseline "
                              "and exit")
    analyze.add_argument("--json", action="store_true")
    analyze.set_defaults(func=_cmd_analyze)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into head & friends; not an error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
