"""ZeRO-Infinity factory functions (paper Sections V-B, V-C, V-E).

ZeRO-Infinity (Rajbhandari et al., SC'21) extends ZeRO-3 offloading to
NVMe storage, staging tensors through pinned host DRAM with an async-IO
engine.  The paper evaluates optimizer-only and optimizer+parameter NVMe
offload, shows throughput scaling with aggregate NVMe bandwidth, and
studies data placement across sockets (Fig. 14 / Table VI).
"""

from __future__ import annotations

from ..model.states import OffloadTarget, ZeroStage
from .zero import ZeroStrategy


def zero3_nvme_optimizer() -> ZeroStrategy:
    """ZeRO-Infinity: optimizer states on the NVMe swap volume."""
    return ZeroStrategy(ZeroStage.PARAMETERS,
                        optimizer_target=OffloadTarget.NVME)


def zero3_nvme_optimizer_params() -> ZeroStrategy:
    """ZeRO-Infinity: optimizer states and fp16 parameters on NVMe."""
    return ZeroStrategy(ZeroStage.PARAMETERS,
                        optimizer_target=OffloadTarget.NVME,
                        parameter_target=OffloadTarget.NVME)
