"""Training-strategy base class and shared timing/memory helpers.

A strategy answers three questions for a (cluster, model, training) triple:

1. *Where do the bytes live?* — :meth:`TrainingStrategy.memory_plan`
   returns labelled per-rank allocations for GPU HBM, host DRAM, and the
   NVMe swap volume.  The max-model-size search (Fig. 6/13) applies the
   plan to the cluster's memory pools and backs off on OOM.
2. *What happens each iteration?* — :meth:`TrainingStrategy.build_schedule`
   compiles the per-rank step list the executor runs on the DES, yielding
   iteration time, timelines (Fig. 5), and bandwidth ledgers (Table IV).
3. *How fast is compute?* — a calibrated
   :class:`~repro.runtime.kernels.GpuComputeModel`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Tuple

from .. import calibration
from ..errors import ConfigurationError
from ..hardware.cluster import Cluster
from ..hardware.serdes import TrafficProfile
from ..model.activations import activation_memory_per_gpu
from ..model.config import ModelConfig, TrainingConfig
from ..model.flops import forward_flops
from ..model.params import total_parameters
from ..runtime.kernels import GpuComputeModel, KernelKind
from .schedule import ComputeStep, IterationSchedule


@dataclass
class MemoryPlan:
    """Labelled byte allocations for one data-parallel rank.

    ``gpu`` bytes land in the rank's HBM pool; ``cpu`` bytes in the host
    DRAM pool of the rank's socket; ``nvme`` bytes on the rank's swap
    volume.  Labels feed the memory-composition plots (Figs. 11-b, 13-c).
    """

    gpu: Dict[str, float] = field(default_factory=dict)
    cpu: Dict[str, float] = field(default_factory=dict)
    nvme: Dict[str, float] = field(default_factory=dict)

    @property
    def gpu_total(self) -> float:
        return sum(self.gpu.values())

    @property
    def cpu_total(self) -> float:
        return sum(self.cpu.values())

    @property
    def nvme_total(self) -> float:
        return sum(self.nvme.values())

    def add_gpu(self, label: str, num_bytes: float) -> None:
        if num_bytes > 0:
            self.gpu[label] = self.gpu.get(label, 0.0) + num_bytes

    def add_cpu(self, label: str, num_bytes: float) -> None:
        if num_bytes > 0:
            self.cpu[label] = self.cpu.get(label, 0.0) + num_bytes

    def add_nvme(self, label: str, num_bytes: float) -> None:
        if num_bytes > 0:
            self.nvme[label] = self.nvme.get(label, 0.0) + num_bytes


@dataclass(frozen=True)
class StrategyContext:
    """Everything a strategy needs to plan one training run."""

    cluster: Cluster
    model: ModelConfig
    training: TrainingConfig

    @property
    def world_size(self) -> int:
        return self.cluster.num_gpus

    @property
    def total_params(self) -> int:
        return total_parameters(self.model)

    @property
    def total_tokens_per_iteration(self) -> int:
        """Tokens processed per optimizer step, identical across strategies
        so reported TFLOP/s are comparable (paper Section III-B)."""
        return (
            self.training.micro_batch_per_gpu
            * self.model.seq_length
            * self.world_size
        )


@dataclass(frozen=True)
class LayerTimings:
    """Per-rank kernel durations derived from the FLOP model."""

    fwd_layer: float        # one transformer layer, forward
    bwd_layer: float        # one transformer layer, backward (2x fwd)
    recompute_layer: float  # forward re-execution under checkpointing
    head_fwd: float         # embedding + LM head forward
    head_bwd: float
    elementwise_layer: float  # non-GEMM tail per layer (bias/gelu/dropout)


class TrainingStrategy(abc.ABC):
    """Abstract base for DDP, Megatron-LM, and the DeepSpeed ZeRO family."""

    #: short machine name, e.g. "zero2"
    name: str = ""
    #: label used in tables/plots, e.g. "ZeRO-2"
    display_name: str = ""
    #: how this strategy's traffic loads the fabric (Section IV-E2)
    traffic_profile: TrafficProfile = TrafficProfile.BURSTY

    def __init__(self, cal: calibration.StrategyCalibration) -> None:
        self.calibration = cal

    # -- required interface -------------------------------------------------
    @abc.abstractmethod
    def data_parallel_degree(self, ctx: StrategyContext) -> int:
        """Number of data-parallel replicas."""

    @abc.abstractmethod
    def memory_plan(self, ctx: StrategyContext) -> MemoryPlan:
        """Per-rank byte placement for the run."""

    @abc.abstractmethod
    def build_schedule(self, ctx: StrategyContext) -> IterationSchedule:
        """Compile one optimizer step into executor steps."""

    # -- shared helpers ------------------------------------------------------
    def compute_model(self, ctx: StrategyContext) -> GpuComputeModel:
        gpu_spec = ctx.cluster.nodes[0].spec.gpu
        return GpuComputeModel(gpu_spec, self.calibration.gemm_efficiency)

    def model_parallel_degree(self, ctx: StrategyContext) -> int:
        """GPUs sharing one model replica (1 except for Megatron-LM)."""
        return 1

    def parallel_degrees(self, ctx: StrategyContext) -> Tuple[int, int]:
        """The ``(data-parallel, model-parallel)`` degrees for one run.

        Every valid strategy satisfies ``dp x mp == world_size``; the
        static analyzer (:mod:`repro.analysis`) checks this invariant
        without building a schedule.
        """
        return self.data_parallel_degree(ctx), self.model_parallel_degree(ctx)

    def layer_timings(self, ctx: StrategyContext) -> LayerTimings:
        """Kernel durations for this rank's share of one layer.

        The per-iteration FLOPs of the whole job are fixed by the token
        count; a rank computes ``1 / (dp x mp)`` of them.
        """
        compute = self.compute_model(ctx)
        mp = self.model_parallel_degree(ctx)
        dp = self.data_parallel_degree(ctx)
        if dp * mp != ctx.world_size:
            raise ConfigurationError(
                f"dp ({dp}) x mp ({mp}) must equal world size "
                f"({ctx.world_size})"
            )
        # forward_flops is for one micro-batch (one DP rank's tokens).
        # With dp x mp = world, each rank's share of the job's FLOPs
        # always equals exactly one micro-batch's worth: a pure-DP rank
        # computes its own micro-batch; a model-parallel rank computes
        # 1/mp of dp micro-batches x (world/dp)/... = the same total.
        fwd = forward_flops(ctx.model, ctx.training.micro_batch_per_gpu)
        layer_fwd_flops = (
            (fwd.attention_gemm + fwd.attention_scores + fwd.mlp)
            / ctx.model.num_layers
        )
        head_flops = fwd.lm_head
        gemm_fraction = 0.92
        fwd_layer = compute.gemm_time(layer_fwd_flops * gemm_fraction)
        elementwise = compute.memory_bound_time(
            # bias+gelu+dropout+layernorm traffic: ~16 streamed bytes per
            # activation element of the ffn width.
            16.0
            * ctx.training.micro_batch_per_gpu
            * ctx.model.seq_length
            * ctx.model.ffn_hidden
        )
        return LayerTimings(
            fwd_layer=fwd_layer,
            bwd_layer=2.0 * fwd_layer,
            recompute_layer=fwd_layer if ctx.training.activation_recompute else 0.0,
            head_fwd=compute.gemm_time(head_flops),
            head_bwd=2.0 * compute.gemm_time(head_flops),
            elementwise_layer=elementwise,
        )

    def base_gpu_plan(self, ctx: StrategyContext, *, tensor_parallel: int = 1,
                      pipeline_parallel: int = 1) -> MemoryPlan:
        """Activations + framework buffers common to every strategy."""
        plan = MemoryPlan()
        plan.add_gpu("activations", activation_memory_per_gpu(
            ctx.model, ctx.training,
            tensor_parallel=tensor_parallel,
            pipeline_parallel=pipeline_parallel,
        ))
        dp = self.data_parallel_degree(ctx)
        plan.add_gpu("framework_buffers", self.calibration.gpu_buffer_bytes
                     + self.calibration.gpu_buffer_bytes_per_dp / dp)
        return plan

    def host_base_plan(self, plan: MemoryPlan, ctx: StrategyContext) -> None:
        """Charge the per-node host baseline, split across ranks."""
        per_rank = (
            calibration.HOST_BASE_BYTES_PER_NODE
            * ctx.cluster.num_nodes
            / ctx.world_size
        )
        plan.add_cpu("host_baseline", per_rank)

    # -- cosmetics -----------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def gemm_step(duration: float, name: str) -> ComputeStep:
    return ComputeStep(KernelKind.GEMM, duration, name)


def elementwise_step(duration: float, name: str) -> ComputeStep:
    return ComputeStep(KernelKind.ELEMENTWISE, duration, name)


def optimizer_step(duration: float, name: str = "adam") -> ComputeStep:
    return ComputeStep(KernelKind.OPTIMIZER, duration, name)
