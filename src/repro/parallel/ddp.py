"""PyTorch Distributed Data-Parallel (DDP) strategy.

DDP replicates the full model on every GPU, runs forward/backward on a
local micro-batch, and all-reduces gradients bucket-by-bucket overlapped
with backward compute (Li et al., VLDB 2020).  It is the paper's baseline:
highest throughput, but model size capped by one GPU's memory (Fig. 6).
"""

from __future__ import annotations

from typing import List

from ..collectives.primitives import CollectiveKind
from .. import calibration
from ..model.params import count_parameters
from ..model.states import PARAM_BYTES, replicated_states
from ..runtime.kernels import KernelKind
from .schedule import (
    CollectiveStep,
    CommunicatorSpec,
    ComputeStep,
    IterationSchedule,
    Step,
    WaitPendingStep,
    layer_chunks,
    uniform_schedule,
)
from .strategy import (
    MemoryPlan,
    StrategyContext,
    TrainingStrategy,
    elementwise_step,
    gemm_step,
    optimizer_step,
)


class DdpStrategy(TrainingStrategy):
    """Vanilla data parallelism with AMP mixed precision."""

    name = "ddp"
    display_name = "PyTorch DDP"

    def __init__(self) -> None:
        super().__init__(calibration.DDP)

    def data_parallel_degree(self, ctx: StrategyContext) -> int:
        return ctx.world_size

    # -- memory ---------------------------------------------------------------
    def memory_plan(self, ctx: StrategyContext) -> MemoryPlan:
        plan = self.base_gpu_plan(ctx)
        states = replicated_states(ctx.total_params)
        plan.add_gpu("parameters", states.gpu_params)
        plan.add_gpu("gradients", states.gpu_grads)
        plan.add_gpu("optimizer_states", states.gpu_optimizer)
        plan.add_gpu("amp_and_reducer",
                     calibration.DDP_EXTRA_BYTES_PER_PARAM * ctx.total_params)
        self.host_base_plan(plan, ctx)
        return plan

    # -- schedule ----------------------------------------------------------------
    def build_schedule(self, ctx: StrategyContext) -> IterationSchedule:
        timings = self.layer_timings(ctx)
        breakdown = count_parameters(ctx.model)
        layer_grad_bytes = PARAM_BYTES * breakdown.per_layer
        embed_grad_bytes = PARAM_BYTES * (
            breakdown.embedding + breakdown.position_embedding
            + breakdown.final_layernorm
        )
        chunks = layer_chunks(ctx.model.num_layers)
        steps: List[Step] = []
        for start, count in chunks:
            steps.append(gemm_step(timings.fwd_layer * count,
                                   f"fwd_l{start}+{count}"))
            steps.append(elementwise_step(timings.elementwise_layer * count,
                                          f"fwd_ew_l{start}+{count}"))
        steps.append(gemm_step(timings.head_fwd, "lm_head_fwd"))
        steps.append(gemm_step(timings.head_bwd, "lm_head_bwd"))
        for start, count in reversed(chunks):
            if timings.recompute_layer:
                steps.append(gemm_step(timings.recompute_layer * count,
                                       f"recompute_l{start}+{count}"))
            steps.append(gemm_step(timings.bwd_layer * count,
                                   f"bwd_l{start}+{count}"))
            steps.append(CollectiveStep(
                key=f"allreduce_l{start}",
                comm="dp",
                kind=CollectiveKind.ALL_REDUCE,
                payload_bytes=layer_grad_bytes * count,
                blocking=False,
                op_count=count,
            ))
        steps.append(CollectiveStep(
            key="allreduce_embeddings",
            comm="dp",
            kind=CollectiveKind.ALL_REDUCE,
            payload_bytes=embed_grad_bytes,
            blocking=False,
        ))
        steps.append(WaitPendingStep(name="gradient_sync"))
        compute = self.compute_model(ctx)
        steps.append(optimizer_step(
            compute.optimizer_time(ctx.total_params), "adam_full"
        ))
        steps.append(ComputeStep(KernelKind.ELEMENTWISE,
                                 self.calibration.fixed_overhead_s,
                                 "host_overhead"))
        ranks = list(range(ctx.world_size))
        return uniform_schedule(
            ranks, steps,
            {"dp": CommunicatorSpec("dp", [ranks])},
        )
