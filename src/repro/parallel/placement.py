"""NVMe swap-volume placement configurations (paper Fig. 14 / Table VI).

The paper studies seven ways of wiring scratch NVMe drives to the two
sockets and grouping them into volumes, mapping each GPU rank to a volume
via UNIX soft links:

====  =========================================================
 A    one drive on socket 1, all ranks
 B    RAID0 of two drives on socket 1, all ranks (baseline)
 C    RAID0 of one drive per socket (stripe spans sockets)
 D    no RAID: one drive per socket, ranks use their local drive
 E    RAID0 of four drives (two per socket), all ranks
 F    two RAID0 volumes, one per socket, ranks use the local one
 G    no RAID: four drives, one per rank, socket-local mapping
====  =========================================================

Configurations that stripe across sockets (C, E) force part of every
access over xGMI, inheriting the SerDes contention penalty — the paper's
reason to recommend socket-local volumes (Section V-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import ConfigurationError
from ..hardware.cluster import Cluster
from ..hardware.node import NodeSpec
from ..hardware.nvme import Raid0Volume
from ..hardware.presets import nvme_placement_node_spec


@dataclass(frozen=True)
class PlacementConfig:
    """One Fig. 14 wiring/grouping/mapping configuration."""

    key: str
    description: str
    #: socket of each *scratch* drive, in drive order
    scratch_sockets: Tuple[int, ...]
    #: volumes, as tuples of scratch-drive indices
    grouping: Tuple[Tuple[int, ...], ...]
    #: local GPU rank -> volume index
    rank_to_volume: Tuple[int, ...]

    def __post_init__(self) -> None:
        used = [d for volume in self.grouping for d in volume]
        if sorted(set(used)) != sorted(used):
            raise ConfigurationError(
                f"placement {self.key}: a drive appears in two volumes"
            )
        if any(d >= len(self.scratch_sockets) for d in used):
            raise ConfigurationError(
                f"placement {self.key}: drive index out of range"
            )
        if any(v >= len(self.grouping) for v in self.rank_to_volume):
            raise ConfigurationError(
                f"placement {self.key}: volume index out of range"
            )

    @property
    def num_scratch_drives(self) -> int:
        return len(self.scratch_sockets)

    def node_spec(self) -> NodeSpec:
        """A node spec wired with this placement's scratch drives."""
        return nvme_placement_node_spec(self.scratch_sockets)

    def build_volumes(self, cluster: Cluster) -> Dict[int, Raid0Volume]:
        """Create volumes per node and map every global rank to one."""
        mapping: Dict[int, Raid0Volume] = {}
        for node in cluster.nodes:
            scratch = node.scratch_drives
            if len(scratch) < self.num_scratch_drives:
                raise ConfigurationError(
                    f"placement {self.key} needs {self.num_scratch_drives} "
                    f"scratch drives; node {node.index} has {len(scratch)}"
                )
            volumes: List[Raid0Volume] = []
            for vol_index, drive_indices in enumerate(self.grouping):
                volumes.append(Raid0Volume(
                    f"{node.name}/md{vol_index}",
                    [scratch[d] for d in drive_indices],
                ))
            for local_rank, vol_index in enumerate(self.rank_to_volume):
                global_rank = node.index * cluster.gpus_per_node + local_rank
                if global_rank < cluster.num_gpus:
                    mapping[global_rank] = volumes[vol_index]
        return mapping


PLACEMENTS: Dict[str, PlacementConfig] = {
    "A": PlacementConfig(
        key="A",
        description="single NVMe on socket 1, shared by all ranks",
        scratch_sockets=(1,),
        grouping=((0,),),
        rank_to_volume=(0, 0, 0, 0),
    ),
    "B": PlacementConfig(
        key="B",
        description="RAID0 of 2 NVMe on socket 1 (paper baseline)",
        scratch_sockets=(1, 1),
        grouping=((0, 1),),
        rank_to_volume=(0, 0, 0, 0),
    ),
    "C": PlacementConfig(
        key="C",
        description="RAID0 of 2 NVMe, one per socket (stripe spans xGMI)",
        scratch_sockets=(0, 1),
        grouping=((0, 1),),
        rank_to_volume=(0, 0, 0, 0),
    ),
    "D": PlacementConfig(
        key="D",
        description="2 NVMe without RAID, socket-local rank mapping",
        scratch_sockets=(0, 1),
        grouping=((0,), (1,)),
        rank_to_volume=(0, 0, 1, 1),
    ),
    "E": PlacementConfig(
        key="E",
        description="RAID0 of 4 NVMe across both sockets",
        scratch_sockets=(0, 0, 1, 1),
        grouping=((0, 1, 2, 3),),
        rank_to_volume=(0, 0, 0, 0),
    ),
    "F": PlacementConfig(
        key="F",
        description="two RAID0 volumes of 2 NVMe, one volume per socket",
        scratch_sockets=(0, 0, 1, 1),
        grouping=((0, 1), (2, 3)),
        rank_to_volume=(0, 0, 1, 1),
    ),
    "G": PlacementConfig(
        key="G",
        description="4 NVMe without RAID, one drive per rank, socket-local",
        scratch_sockets=(0, 0, 1, 1),
        grouping=((0,), (1,), (2,), (3,)),
        rank_to_volume=(0, 1, 2, 3),
    ),
}

#: The paper's default swap target outside the placement study.
DEFAULT_PLACEMENT = PLACEMENTS["B"]
