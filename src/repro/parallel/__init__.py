"""Training strategies: DDP, Megatron-LM, and the DeepSpeed ZeRO family."""

from .ddp import DdpStrategy
from .hybrid import HybridTpZeroStrategy, hybrid_tp_zero1, hybrid_tp_zero2
from .infinity import zero3_nvme_optimizer, zero3_nvme_optimizer_params
from .megatron import MegatronStrategy
from .pipeline import PipelineParallelStrategy, pipeline_1f1b
from .offload import (
    zero1_cpu_offload,
    zero2_cpu_offload,
    zero3_cpu_offload,
    zero3_cpu_param_offload,
)
from .placement import DEFAULT_PLACEMENT, PLACEMENTS, PlacementConfig
from .schedule import (
    CollectiveStep,
    CommunicatorSpec,
    ComputeStep,
    CpuWorkStep,
    HostTransferStep,
    IdleStep,
    IterationSchedule,
    Location,
    Step,
    WaitForStep,
    WaitPendingStep,
    layer_chunks,
    uniform_schedule,
)
from .strategy import (
    LayerTimings,
    MemoryPlan,
    StrategyContext,
    TrainingStrategy,
)
from .zero import ZeroStrategy, zero1, zero2, zero3

__all__ = [
    "CollectiveStep",
    "CommunicatorSpec",
    "ComputeStep",
    "CpuWorkStep",
    "DEFAULT_PLACEMENT",
    "DdpStrategy",
    "HostTransferStep",
    "HybridTpZeroStrategy",
    "IdleStep",
    "IterationSchedule",
    "LayerTimings",
    "Location",
    "MegatronStrategy",
    "MemoryPlan",
    "PLACEMENTS",
    "PipelineParallelStrategy",
    "PlacementConfig",
    "Step",
    "StrategyContext",
    "TrainingStrategy",
    "WaitForStep",
    "WaitPendingStep",
    "ZeroStrategy",
    "layer_chunks",
    "uniform_schedule",
    "pipeline_1f1b",
    "hybrid_tp_zero1",
    "hybrid_tp_zero2",
    "zero1",
    "zero1_cpu_offload",
    "zero2",
    "zero2_cpu_offload",
    "zero3",
    "zero3_cpu_offload",
    "zero3_cpu_param_offload",
    "zero3_nvme_optimizer",
    "zero3_nvme_optimizer_params",
]
