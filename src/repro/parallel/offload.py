"""ZeRO-Offload factory functions (paper Section V-A).

ZeRO-Offload (Ren et al., USENIX ATC 2021) moves the fp32 optimizer
partition to host DRAM and runs an AVX-optimized Adam on the CPUs,
freeing GPU memory for a larger model.  The paper explores it on ZeRO-1,
ZeRO-2 (the recommended sweet spot), and ZeRO-3.
"""

from __future__ import annotations

from ..model.states import OffloadTarget, ZeroStage
from .zero import ZeroStrategy


def zero1_cpu_offload() -> ZeroStrategy:
    """ZeRO-1 with the optimizer partition in host DRAM."""
    return ZeroStrategy(ZeroStage.OPTIMIZER,
                        optimizer_target=OffloadTarget.CPU)


def zero2_cpu_offload() -> ZeroStrategy:
    """ZeRO-2 with CPU optimizer offload — the paper's recommendation for
    consolidating dual-node training onto one node (Section V-A1)."""
    return ZeroStrategy(ZeroStage.GRADIENTS,
                        optimizer_target=OffloadTarget.CPU)


def zero3_cpu_offload() -> ZeroStrategy:
    """ZeRO-3 with CPU optimizer offload (parameters stay on GPU)."""
    return ZeroStrategy(ZeroStage.PARAMETERS,
                        optimizer_target=OffloadTarget.CPU)


def zero3_cpu_param_offload() -> ZeroStrategy:
    """ZeRO-3 with optimizer *and* parameters in host DRAM."""
    return ZeroStrategy(ZeroStage.PARAMETERS,
                        optimizer_target=OffloadTarget.CPU,
                        parameter_target=OffloadTarget.CPU)
