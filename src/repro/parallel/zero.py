"""DeepSpeed ZeRO strategies: stages 1-3, ZeRO-Offload, ZeRO-Infinity.

One parameterized strategy covers the whole family (paper Table I):

* **ZeRO-1** partitions optimizer states; gradients still all-reduce like
  DDP, and the updated fp16 parameters are all-gathered after the step.
* **ZeRO-2** additionally partitions gradients: backward emits Reduce
  operations toward each partition's owner (the paper's Fig. 5 shows
  Reduce replacing All-Reduce).
* **ZeRO-3** additionally partitions parameters: every layer's weights are
  all-gathered just-in-time before its GEMMs (with one-layer prefetch) and
  re-gathered during backward, plus reduce-scatter for gradients — the
  50 % communication-volume increase ZeRO's authors advertise.
* **ZeRO-Offload** moves the fp32 optimizer partition (and the gradient
  partitions feeding it) to host DRAM and runs CPU Adam there.
* **ZeRO-Infinity** pushes the optimizer partition — and optionally the
  fp16 parameters — to an NVMe swap volume, staged through host DRAM.
"""

from __future__ import annotations

from typing import List

from ..collectives.primitives import CollectiveKind
from .. import calibration
from ..errors import ConfigurationError
from ..model.params import count_parameters
from ..model.states import (
    OffloadTarget,
    PARAM_BYTES,
    ZeroStage,
    validate_offload,
    zero_states,
)
from ..runtime.kernels import KernelKind
from .schedule import (
    CollectiveStep,
    CommunicatorSpec,
    ComputeStep,
    CpuWorkStep,
    HostTransferStep,
    IterationSchedule,
    Location,
    Step,
    WaitForStep,
    WaitPendingStep,
    layer_chunks,
    uniform_schedule,
)
from .strategy import (
    MemoryPlan,
    StrategyContext,
    TrainingStrategy,
    elementwise_step,
    gemm_step,
    optimizer_step,
)

_STAGE_CALIBRATION = {
    ZeroStage.OPTIMIZER: calibration.ZERO1,
    ZeroStage.GRADIENTS: calibration.ZERO2,
    ZeroStage.PARAMETERS: calibration.ZERO3,
}


class ZeroStrategy(TrainingStrategy):
    """DeepSpeed ZeRO at a given stage with optional offload targets."""

    def __init__(self, stage: ZeroStage, *,
                 optimizer_target: OffloadTarget = OffloadTarget.NONE,
                 parameter_target: OffloadTarget = OffloadTarget.NONE) -> None:
        if stage not in _STAGE_CALIBRATION:
            raise ConfigurationError(
                "ZeroStrategy requires stage 1, 2, or 3 (stage 0 is DDP)"
            )
        validate_offload(stage, optimizer_target=optimizer_target,
                         parameter_target=parameter_target)
        super().__init__(_STAGE_CALIBRATION[stage])
        self.stage = stage
        self.optimizer_target = optimizer_target
        self.parameter_target = parameter_target
        self.name = f"zero{int(stage)}{self._suffix()}"
        self.display_name = f"ZeRO-{int(stage)}{self._display_suffix()}"

    def _suffix(self) -> str:
        parts = []
        if self.optimizer_target is not OffloadTarget.NONE:
            parts.append(f"_opt_{self.optimizer_target.value}")
        if self.parameter_target is not OffloadTarget.NONE:
            parts.append(f"_param_{self.parameter_target.value}")
        return "".join(parts)

    def _display_suffix(self) -> str:
        if self.parameter_target is OffloadTarget.NVME:
            return " (2xNVME opt+param)" if self.optimizer_target is OffloadTarget.NVME else " (param NVME)"
        if self.optimizer_target is OffloadTarget.NVME:
            return " (NVME)"
        if self.optimizer_target is OffloadTarget.CPU:
            return " (CPU)"
        return ""

    # -- properties -------------------------------------------------------------
    @property
    def offloads(self) -> bool:
        return self.optimizer_target is not OffloadTarget.NONE

    @property
    def uses_nvme(self) -> bool:
        return (
            self.optimizer_target is OffloadTarget.NVME
            or self.parameter_target is OffloadTarget.NVME
        )

    def data_parallel_degree(self, ctx: StrategyContext) -> int:
        return ctx.world_size

    # -- memory -------------------------------------------------------------------
    def memory_plan(self, ctx: StrategyContext) -> MemoryPlan:
        dp = self.data_parallel_degree(ctx)
        params = ctx.total_params
        placement = zero_states(
            params, self.stage, dp,
            optimizer_target=self.optimizer_target,
            parameter_target=self.parameter_target,
        )
        plan = self.base_gpu_plan(ctx)
        if self.offloads:
            # Offloaded runs swap the big bucket pools for pinned slabs.
            plan.gpu["framework_buffers"] = calibration.OFFLOAD_GPU_BUFFER_BYTES
        plan.add_gpu("parameters", placement.gpu_params)
        plan.add_gpu("gradients", placement.gpu_grads)
        plan.add_gpu("optimizer_states", placement.gpu_optimizer)
        plan.add_cpu("parameters", placement.cpu_params)
        plan.add_cpu("gradients", placement.cpu_grads)
        plan.add_cpu("optimizer_states", placement.cpu_optimizer)
        if self.optimizer_target is OffloadTarget.CPU:
            plan.add_cpu(
                "pinned_buffers",
                calibration.CPU_OFFLOAD_PINNED_BYTES_PER_PARAM * params / dp,
            )
        elif self.optimizer_target is OffloadTarget.NVME:
            plan.add_cpu("nvme_staging", calibration.NVME_STAGING_SLAB_BYTES)
        if self.parameter_target is OffloadTarget.NVME:
            plan.add_cpu("param_staging",
                         calibration.NVME_PARAM_STAGING_SLAB_BYTES)
        plan.add_nvme("optimizer_states",
                      placement.nvme_optimizer * calibration.NVME_MEDIA_OVERPROVISION)
        plan.add_nvme("parameters",
                      placement.nvme_params * calibration.NVME_MEDIA_OVERPROVISION)
        self.host_base_plan(plan, ctx)
        return plan

    # -- schedule -------------------------------------------------------------------
    def build_schedule(self, ctx: StrategyContext) -> IterationSchedule:
        dp = self.data_parallel_degree(ctx)
        timings = self.layer_timings(ctx)
        breakdown = count_parameters(ctx.model)
        layer_param_bytes = PARAM_BYTES * breakdown.per_layer
        embed_param_bytes = PARAM_BYTES * (
            breakdown.embedding + breakdown.position_embedding
            + breakdown.final_layernorm
        )
        total_param_bytes = PARAM_BYTES * ctx.total_params
        partition_params = ctx.total_params / dp

        steps: List[Step] = []
        num_layers = ctx.model.num_layers
        params_on_gpu = self.parameter_target is OffloadTarget.NONE
        chunks = layer_chunks(num_layers)

        # ---- forward ------------------------------------------------------
        if self.stage.partitions_parameters:
            first_start, first_count = chunks[0]
            self._emit_param_gather(steps, "fwd", first_start,
                                    layer_param_bytes * first_count, dp,
                                    op_count=first_count)
        for index, (start, count) in enumerate(chunks):
            if self.stage.partitions_parameters:
                steps.append(WaitForStep(key=f"ag_fwd_l{start}"))
                if index + 1 < len(chunks):
                    nxt_start, nxt_count = chunks[index + 1]
                    self._emit_param_gather(steps, "fwd", nxt_start,
                                            layer_param_bytes * nxt_count, dp,
                                            op_count=nxt_count)
            steps.append(gemm_step(timings.fwd_layer * count,
                                   f"fwd_l{start}+{count}"))
            steps.append(elementwise_step(timings.elementwise_layer * count,
                                          f"fwd_ew_l{start}+{count}"))
        steps.append(gemm_step(timings.head_fwd, "lm_head_fwd"))
        steps.append(gemm_step(timings.head_bwd, "lm_head_bwd"))

        # ---- backward ------------------------------------------------------
        for start, count in reversed(chunks):
            if self.stage.partitions_parameters:
                self._emit_param_gather(steps, "bwd", start,
                                        layer_param_bytes * count, dp,
                                        blocking=True, op_count=count)
            if timings.recompute_layer:
                steps.append(gemm_step(timings.recompute_layer * count,
                                       f"recompute_l{start}+{count}"))
            steps.append(gemm_step(timings.bwd_layer * count,
                                   f"bwd_l{start}+{count}"))
            steps.append(self._gradient_collective(
                f"l{start}", layer_param_bytes * count, op_count=count
            ))
            if self.offloads:
                steps.append(HostTransferStep(
                    name=f"grad_offload_l{start}",
                    src=Location.GPU,
                    dst=Location.DRAM,
                    payload_bytes=layer_param_bytes * count / dp,
                    blocking=False,
                ))
        steps.append(self._gradient_collective("emb", embed_param_bytes))
        steps.append(WaitPendingStep(name="gradient_sync"))

        # ---- optimizer ------------------------------------------------------
        steps.extend(self._optimizer_steps(ctx, partition_params))

        # ---- parameter refresh ----------------------------------------------
        if not self.stage.partitions_parameters:
            # ZeRO-1/2: all-gather the updated fp16 parameters.
            if self.offloads:
                steps.append(HostTransferStep(
                    name="updated_params_to_gpu",
                    src=Location.DRAM,
                    dst=Location.GPU,
                    payload_bytes=total_param_bytes / dp,
                    blocking=True,
                ))
            steps.append(CollectiveStep(
                key="allgather_updated_params",
                comm="dp",
                kind=CollectiveKind.ALL_GATHER,
                payload_bytes=total_param_bytes,
                blocking=True,
            ))
        elif self.offloads and params_on_gpu:
            # ZeRO-3 with GPU-resident parameters: refresh the local
            # partition from the host-side optimizer output.
            steps.append(HostTransferStep(
                name="updated_params_to_gpu",
                src=Location.DRAM,
                dst=Location.GPU,
                payload_bytes=total_param_bytes / dp,
                blocking=True,
            ))

        steps.append(ComputeStep(
            KernelKind.ELEMENTWISE,
            calibration.OFFLOAD_FIXED_OVERHEAD_S if self.offloads
            else self.calibration.fixed_overhead_s,
            "host_overhead",
        ))
        ranks = list(range(ctx.world_size))
        return uniform_schedule(
            ranks, steps, {"dp": CommunicatorSpec("dp", [ranks])},
        )

    # -- schedule fragments ----------------------------------------------------
    def _emit_param_gather(self, steps: List[Step], phase: str, layer: int,
                           chunk_param_bytes: float, dp: int,
                           *, blocking: bool = False,
                           op_count: int = 1) -> None:
        """Fetch + all-gather one layer chunk's parameters (ZeRO-3 family)."""
        if self.parameter_target is OffloadTarget.NVME:
            steps.append(HostTransferStep(
                name=f"param_swap_in_{phase}_l{layer}",
                src=Location.NVME,
                dst=Location.DRAM,
                payload_bytes=chunk_param_bytes / dp,
                blocking=True,
            ))
        if self.parameter_target is not OffloadTarget.NONE:
            steps.append(HostTransferStep(
                name=f"param_to_gpu_{phase}_l{layer}",
                src=Location.DRAM,
                dst=Location.GPU,
                payload_bytes=chunk_param_bytes / dp,
                blocking=True,
            ))
        steps.append(CollectiveStep(
            key=f"ag_{phase}_l{layer}",
            comm="dp",
            kind=CollectiveKind.ALL_GATHER,
            payload_bytes=chunk_param_bytes,
            blocking=blocking,
            op_count=op_count,
        ))

    def _gradient_collective(self, label: str, payload_bytes: float,
                             *, op_count: int = 1) -> CollectiveStep:
        """Backward gradient synchronization for one layer chunk."""
        if self.stage.partitions_parameters:
            kind = CollectiveKind.REDUCE_SCATTER
        elif self.stage.partitions_gradients:
            kind = CollectiveKind.REDUCE
        else:
            kind = CollectiveKind.ALL_REDUCE
        return CollectiveStep(
            key=f"grad_sync_{label}",
            comm="dp",
            kind=kind,
            payload_bytes=payload_bytes,
            blocking=False,
            op_count=op_count,
        )

    def _optimizer_steps(self, ctx: StrategyContext,
                         partition_params: float) -> List[Step]:
        steps: List[Step] = []
        if self.optimizer_target is OffloadTarget.NONE:
            compute = self.compute_model(ctx)
            steps.append(optimizer_step(
                compute.optimizer_time(partition_params), "adam_partition"
            ))
            return steps
        if self.optimizer_target is OffloadTarget.NVME:
            steps.append(HostTransferStep(
                name="optimizer_swap_in",
                src=Location.NVME,
                dst=Location.DRAM,
                payload_bytes=(
                    calibration.NVME_SWAP_READ_BYTES_PER_PARAM
                    * partition_params
                ),
                blocking=True,
            ))
        steps.append(CpuWorkStep(name="cpu_adam", num_params=partition_params))
        if self.optimizer_target is OffloadTarget.NVME:
            steps.append(HostTransferStep(
                name="optimizer_swap_out",
                src=Location.DRAM,
                dst=Location.NVME,
                payload_bytes=(
                    calibration.NVME_SWAP_WRITE_BYTES_PER_PARAM
                    * partition_params
                ),
                blocking=True,
            ))
        if self.parameter_target is OffloadTarget.NVME:
            steps.append(HostTransferStep(
                name="updated_params_swap_out",
                src=Location.DRAM,
                dst=Location.NVME,
                payload_bytes=PARAM_BYTES * partition_params,
                blocking=True,
            ))
        return steps


def zero1() -> ZeroStrategy:
    """ZeRO-1: optimizer-state partitioning."""
    return ZeroStrategy(ZeroStage.OPTIMIZER)


def zero2() -> ZeroStrategy:
    """ZeRO-2: optimizer + gradient partitioning."""
    return ZeroStrategy(ZeroStage.GRADIENTS)


def zero3() -> ZeroStrategy:
    """ZeRO-3: full model-state partitioning."""
    return ZeroStrategy(ZeroStage.PARAMETERS)
