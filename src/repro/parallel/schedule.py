"""Iteration-schedule intermediate representation.

A training strategy compiles one optimizer step into a per-rank list of
:class:`Step` objects — GPU compute segments, collectives, host/NVMe
transfers, CPU optimizer work, and pipeline-bubble idles.  The executor
(:mod:`repro.runtime.executor`) interprets the steps on the discrete-event
engine, which yields iteration times, Fig.-5-style timelines, and
per-link bandwidth ledgers in one pass.

The IR keeps strategies declarative and hardware-agnostic: endpoints are
symbolic (:class:`Location`), collectives name a communicator group, and
all rendezvous between ranks happens via step keys.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

from ..collectives.primitives import CollectiveKind
from ..errors import ConfigurationError
from ..runtime.kernels import KernelKind


class Location(enum.Enum):
    """Symbolic endpoints resolved per rank by the executor."""

    GPU = "gpu"          # the rank's GPU HBM
    DRAM = "dram"        # host DRAM on the rank's socket
    NVME = "nvme"        # the rank's assigned swap volume


@dataclass(frozen=True)
class ComputeStep:
    """A GPU kernel segment of known duration."""

    kind: KernelKind
    duration: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ConfigurationError("compute duration must be non-negative")


@dataclass(frozen=True)
class CollectiveStep:
    """A collective over a named communicator.

    ``blocking`` steps stall the rank until the collective completes
    (Megatron's inline TP all-reduces, ZeRO-3's pre-GEMM all-gathers);
    non-blocking steps launch and continue (DDP/ZeRO gradient reduction
    overlapped with backward compute), to be collected by a later
    :class:`WaitPendingStep`.
    ``key`` must be unique per iteration and identical across the ranks of
    one group — it is the rendezvous identity.
    """

    key: str
    comm: str
    kind: CollectiveKind
    payload_bytes: float
    blocking: bool = True
    #: how many real NCCL launches this (possibly layer-fused) step stands
    #: for — preserves per-operation launch overhead when schedules chunk
    #: adjacent layers to bound simulation event counts.
    op_count: int = 1

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ConfigurationError("payload must be non-negative")
        if self.op_count < 1:
            raise ConfigurationError("op_count must be >= 1")

    @property
    def kernel_kind(self) -> KernelKind:
        return {
            CollectiveKind.ALL_REDUCE: KernelKind.NCCL_ALL_REDUCE,
            CollectiveKind.ALL_GATHER: KernelKind.NCCL_ALL_GATHER,
            CollectiveKind.REDUCE_SCATTER: KernelKind.NCCL_REDUCE,
            CollectiveKind.REDUCE: KernelKind.NCCL_REDUCE,
            CollectiveKind.BROADCAST: KernelKind.NCCL_BROADCAST,
            CollectiveKind.SEND_RECV: KernelKind.NCCL_SEND_RECV,
        }[self.kind]


@dataclass(frozen=True)
class WaitPendingStep:
    """Wait for every non-blocking operation this rank has launched."""

    name: str = "wait_pending"


@dataclass(frozen=True)
class WaitForStep:
    """Wait for one specific non-blocking operation by its key.

    Models prefetching: ZeRO-3 launches the next layer's parameter
    all-gather non-blocking, computes the current layer, then waits on the
    prefetched gather before entering the next layer's GEMMs.
    """

    key: str
    name: str = "wait_for"


@dataclass(frozen=True)
class HostTransferStep:
    """A point transfer between the rank's GPU, DRAM, or NVMe volume.

    NVMe endpoints fan out into per-stripe-member flows capped at each
    drive's sustained media bandwidth; GPU<->DRAM transfers ride the PCIe
    root and DRAM channels of the rank's socket.
    """

    name: str
    src: Location
    dst: Location
    payload_bytes: float
    blocking: bool = True

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ConfigurationError("payload must be non-negative")
        if self.src is self.dst:
            raise ConfigurationError("transfer endpoints must differ")


@dataclass(frozen=True)
class CpuWorkStep:
    """Host-side optimizer work (DeepSpeed CPU Adam) over a partition.

    Duration is computed by the executor from the socket's DRAM bandwidth
    shared among the ranks working on that socket, per the model in
    :func:`repro.hardware.cpu.cpu_adam_step_time`.
    """

    name: str
    num_params: float

    def __post_init__(self) -> None:
        if self.num_params < 0:
            raise ConfigurationError("num_params must be non-negative")


@dataclass(frozen=True)
class IdleStep:
    """Deliberate GPU idle time (pipeline bubbles, serialization stalls)."""

    duration: float
    name: str = "bubble"

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ConfigurationError("idle duration must be non-negative")


Step = Union[ComputeStep, CollectiveStep, WaitPendingStep, WaitForStep,
             HostTransferStep, CpuWorkStep, IdleStep]


@dataclass
class CommunicatorSpec:
    """A named set of rank groups (e.g. one TP group per node)."""

    name: str
    groups: List[List[int]]

    def group_of(self, rank: int) -> Tuple[int, List[int]]:
        for index, group in enumerate(self.groups):
            if rank in group:
                return index, group
        raise ConfigurationError(
            f"rank {rank} is in no group of communicator {self.name!r}"
        )


@dataclass
class IterationSchedule:
    """One optimizer step, compiled per rank."""

    steps_by_rank: Dict[int, List[Step]]
    communicators: Dict[str, CommunicatorSpec] = field(default_factory=dict)

    @property
    def ranks(self) -> List[int]:
        return sorted(self.steps_by_rank)

    def validate(self) -> None:
        """Sanity-check rendezvous consistency across ranks."""
        seen: Dict[Tuple[str, int, str], int] = {}
        for rank, steps in self.steps_by_rank.items():
            for step in steps:
                if isinstance(step, CollectiveStep):
                    if step.comm not in self.communicators:
                        raise ConfigurationError(
                            f"step {step.key!r} names unknown communicator "
                            f"{step.comm!r}"
                        )
                    spec = self.communicators[step.comm]
                    group_index, _ = spec.group_of(rank)
                    ident = (step.comm, group_index, step.key)
                    seen[ident] = seen.get(ident, 0) + 1
        for (comm, group_index, key), count in seen.items():
            group = self.communicators[comm].groups[group_index]
            if count != len(group):
                raise ConfigurationError(
                    f"collective {key!r} on {comm}[{group_index}] reached by "
                    f"{count} ranks, group has {len(group)}"
                )


def uniform_schedule(ranks: Sequence[int], steps: List[Step],
                     communicators: Dict[str, CommunicatorSpec]) -> IterationSchedule:
    """An SPMD schedule: every rank executes the same step list."""
    return IterationSchedule(
        steps_by_rank={rank: list(steps) for rank in ranks},
        communicators=communicators,
    )


def layer_chunks(num_layers: int, max_chunks: int = 48) -> List[Tuple[int, int]]:
    """Split ``num_layers`` into at most ``max_chunks`` (start, count) runs.

    Deep models (the paper scales to 660 layers) would otherwise emit
    thousands of per-layer steps per iteration; chunking fuses adjacent
    layers while schedules preserve total compute time, communication
    payload, and per-operation launch counts.
    """
    if num_layers < 1:
        raise ConfigurationError("num_layers must be >= 1")
    if max_chunks < 1:
        raise ConfigurationError("max_chunks must be >= 1")
    chunk_count = min(num_layers, max_chunks)
    base = num_layers // chunk_count
    remainder = num_layers % chunk_count
    chunks: List[Tuple[int, int]] = []
    start = 0
    for index in range(chunk_count):
        count = base + (1 if index < remainder else 0)
        chunks.append((start, count))
        start += count
    return chunks
