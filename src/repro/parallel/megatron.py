"""Megatron-LM tensor + pipeline model parallelism.

The paper configures Megatron-LM with TP=4/PP=4 on one node and TP=8/PP=8
on two (Section IV): the whole job is one model-parallel group; there is
no data parallelism.  We model the group as ``mp = world_size`` ranks that

* each compute ``1/mp`` of every layer's GEMMs (tensor slicing),
* all-reduce the sliced activations twice per layer per direction
  (Shoeybi et al.: one after attention, one after the MLP) — the dense
  stream of All-Reduce between GEMMs in the paper's Fig. 5 timeline,
* process the batch as ``mp`` pipeline micro-batches (Fig. 5 shows four
  forward/backward pairs on four GPUs), paying a fill/drain bubble, and
* exchange stage-boundary activations point-to-point.

Across nodes the TP all-reduces ride RoCE with a SUSTAINED traffic
profile — the constant-stream pattern the paper blames (together with the
SerDes contention) for Megatron-LM's dual-node collapse.
"""

from __future__ import annotations

from typing import List

from ..collectives.primitives import CollectiveKind
from .. import calibration
from ..hardware.serdes import TrafficProfile
from ..model.states import model_parallel_states
from ..runtime.kernels import KernelKind
from .schedule import (
    CollectiveStep,
    CommunicatorSpec,
    ComputeStep,
    IdleStep,
    IterationSchedule,
    Step,
    layer_chunks,
    uniform_schedule,
)
from .strategy import (
    MemoryPlan,
    StrategyContext,
    TrainingStrategy,
    elementwise_step,
    gemm_step,
    optimizer_step,
)


class MegatronStrategy(TrainingStrategy):
    """Megatron-LM with TP x PP spanning every GPU in the job."""

    name = "megatron"
    display_name = "Megatron-LM"
    traffic_profile = TrafficProfile.SUSTAINED

    def __init__(self) -> None:
        super().__init__(calibration.MEGATRON)

    def data_parallel_degree(self, ctx: StrategyContext) -> int:
        return 1

    def model_parallel_degree(self, ctx: StrategyContext) -> int:
        return ctx.world_size

    # -- memory -----------------------------------------------------------------
    def memory_plan(self, ctx: StrategyContext) -> MemoryPlan:
        mp = self.model_parallel_degree(ctx)
        plan = self.base_gpu_plan(ctx, tensor_parallel=mp)
        plan.gpu["framework_buffers"] = (
            self.calibration.gpu_buffer_bytes
            + calibration.MEGATRON_BUFFER_PER_MP / mp
        )
        states = model_parallel_states(ctx.total_params, mp)
        plan.add_gpu("parameters", states.gpu_params)
        plan.add_gpu("gradients", states.gpu_grads)
        plan.add_gpu("optimizer_states", states.gpu_optimizer)
        self.host_base_plan(plan, ctx)
        return plan

    # -- schedule -----------------------------------------------------------------
    def build_schedule(self, ctx: StrategyContext) -> IterationSchedule:
        mp = self.model_parallel_degree(ctx)
        micro_batches = mp  # Fig. 5: one fwd/bwd pair per model-parallel rank
        timings = self.layer_timings(ctx)
        num_layers = ctx.model.num_layers

        # Activation payload per TP all-reduce per micro-batch: the whole
        # group's tokens divided across micro-batches, times hidden, fp16.
        tokens_per_microbatch = ctx.total_tokens_per_iteration / micro_batches
        activation_bytes = tokens_per_microbatch * ctx.model.hidden_size * 2.0
        fwd_ar_bytes = 2.0 * activation_bytes   # post-attention + post-MLP
        bwd_ar_factor = 4.0 if ctx.training.activation_recompute else 2.0
        bwd_ar_bytes = bwd_ar_factor * activation_bytes
        boundary_bytes = activation_bytes       # pipeline stage hand-off

        # Per-micro-batch per-layer compute: a rank's layer share / m.
        fwd_t = timings.fwd_layer / micro_batches
        ew_t = timings.elementwise_layer / micro_batches
        bwd_t = (timings.bwd_layer + timings.recompute_layer) / micro_batches
        head_fwd_t = timings.head_fwd / micro_batches
        head_bwd_t = timings.head_bwd / micro_batches

        compute_total = (
            num_layers * (fwd_t + ew_t + bwd_t)
            + head_fwd_t + head_bwd_t
        ) * micro_batches
        bubble = calibration.MEGATRON_BUBBLE_FRACTION * compute_total

        chunks = layer_chunks(num_layers, max_chunks=24)
        steps: List[Step] = [IdleStep(bubble / 2.0, "pipeline_fill")]
        for mb in range(micro_batches):
            for start, count in chunks:
                steps.append(gemm_step(fwd_t * count,
                                       f"fwd_mb{mb}_l{start}+{count}"))
                steps.append(elementwise_step(ew_t * count,
                                              f"fwd_ew_mb{mb}_l{start}+{count}"))
                steps.append(CollectiveStep(
                    key=f"tp_ar_fwd_mb{mb}_l{start}",
                    comm="mp",
                    kind=CollectiveKind.ALL_REDUCE,
                    payload_bytes=fwd_ar_bytes * count,
                    blocking=True,
                    op_count=2 * count,  # post-attention + post-MLP per layer
                ))
            steps.append(CollectiveStep(
                key=f"pp_boundary_fwd_mb{mb}",
                comm="mp",
                kind=CollectiveKind.SEND_RECV,
                payload_bytes=boundary_bytes,
                blocking=True,
            ))
            steps.append(gemm_step(head_fwd_t, f"lm_head_fwd_mb{mb}"))
            steps.append(gemm_step(head_bwd_t, f"lm_head_bwd_mb{mb}"))
            for start, count in reversed(chunks):
                steps.append(gemm_step(bwd_t * count,
                                       f"bwd_mb{mb}_l{start}+{count}"))
                steps.append(CollectiveStep(
                    key=f"tp_ar_bwd_mb{mb}_l{start}",
                    comm="mp",
                    kind=CollectiveKind.ALL_REDUCE,
                    payload_bytes=bwd_ar_bytes * count,
                    blocking=True,
                    op_count=2 * count,
                ))
            steps.append(CollectiveStep(
                key=f"pp_boundary_bwd_mb{mb}",
                comm="mp",
                kind=CollectiveKind.SEND_RECV,
                payload_bytes=boundary_bytes,
                blocking=True,
            ))
        steps.append(IdleStep(bubble / 2.0, "pipeline_drain"))
        compute = self.compute_model(ctx)
        steps.append(optimizer_step(
            compute.optimizer_time(ctx.total_params / mp), "adam_shard"
        ))
        steps.append(ComputeStep(KernelKind.ELEMENTWISE,
                                 self.calibration.fixed_overhead_s,
                                 "host_overhead"))
        ranks = list(range(ctx.world_size))
        return uniform_schedule(
            ranks, steps, {"mp": CommunicatorSpec("mp", [ranks])},
        )
