"""Hybrid tensor-parallel + ZeRO data-parallel strategy (extension).

The paper notes that "DeepSpeed supports hybrid parallelism, including
TP, PP, and DP" (Section II-C) but never evaluates it.  This strategy
implements the configuration its own findings point to: keep Megatron
style tensor parallelism *inside* each node (where the dense activation
all-reduces ride NVLink) and run ZeRO data parallelism *across* nodes
(where only bucketed gradient/parameter traffic touches the contended
RoCE fabric).  On the paper's dual-node cluster this avoids exactly the
failure mode that collapses Megatron-LM (inter-node TP all-reduce) while
fitting more than plain data parallelism.

The extension experiment (``repro.experiments.ext_hybrid``) compares it
against the paper's configurations.
"""

from __future__ import annotations

from typing import List

from .. import calibration
from ..collectives.primitives import CollectiveKind
from ..errors import ConfigurationError
from ..model.params import count_parameters
from ..model.states import PARAM_BYTES, ZeroStage
from ..runtime.kernels import KernelKind
from .schedule import (
    CollectiveStep,
    CommunicatorSpec,
    ComputeStep,
    IterationSchedule,
    Step,
    WaitPendingStep,
    layer_chunks,
    uniform_schedule,
)
from .strategy import (
    MemoryPlan,
    StrategyContext,
    TrainingStrategy,
    elementwise_step,
    gemm_step,
    optimizer_step,
)


class HybridTpZeroStrategy(TrainingStrategy):
    """Intra-node tensor parallelism x inter-node ZeRO data parallelism."""

    name = "hybrid_tp_zero"
    display_name = "Hybrid TP x ZeRO"

    def __init__(self, *, zero_stage: ZeroStage = ZeroStage.OPTIMIZER) -> None:
        if zero_stage not in (ZeroStage.OPTIMIZER, ZeroStage.GRADIENTS):
            raise ConfigurationError(
                "the hybrid strategy supports ZeRO stages 1 and 2 "
                "(stage 3 would re-shard the already TP-sharded parameters)"
            )
        super().__init__(calibration.MEGATRON)
        self.zero_stage = zero_stage
        self.name = f"hybrid_tp_zero{int(zero_stage)}"
        self.display_name = f"Hybrid TP x ZeRO-{int(zero_stage)}"

    # -- degrees -----------------------------------------------------------------
    def model_parallel_degree(self, ctx: StrategyContext) -> int:
        return ctx.cluster.gpus_per_node

    def data_parallel_degree(self, ctx: StrategyContext) -> int:
        return ctx.cluster.num_nodes

    # -- memory --------------------------------------------------------------------
    def memory_plan(self, ctx: StrategyContext) -> MemoryPlan:
        mp = self.model_parallel_degree(ctx)
        dp = self.data_parallel_degree(ctx)
        params = ctx.total_params
        plan = self.base_gpu_plan(ctx, tensor_parallel=mp)
        plan.gpu["framework_buffers"] = (
            self.calibration.gpu_buffer_bytes
            + calibration.MEGATRON_BUFFER_PER_MP / mp
        )
        shard = params / mp
        plan.add_gpu("parameters", 2.0 * shard)
        grads = 2.0 * shard
        optim = 12.0 * shard
        if self.zero_stage.partitions_gradients:
            grads /= dp
        if self.zero_stage.partitions_optimizer:
            optim /= dp
        plan.add_gpu("gradients", grads)
        plan.add_gpu("optimizer_states", optim)
        self.host_base_plan(plan, ctx)
        return plan

    # -- schedule --------------------------------------------------------------------
    def build_schedule(self, ctx: StrategyContext) -> IterationSchedule:
        mp = self.model_parallel_degree(ctx)
        dp = self.data_parallel_degree(ctx)
        per_node = ctx.cluster.gpus_per_node
        timings = self.layer_timings(ctx)
        breakdown = count_parameters(ctx.model)
        shard_layer_bytes = PARAM_BYTES * breakdown.per_layer / mp
        shard_total_bytes = PARAM_BYTES * breakdown.total / mp

        # Each TP group processes its own dp-share of the global batch.
        tokens_per_group = ctx.total_tokens_per_iteration / dp
        activation_bytes = tokens_per_group * ctx.model.hidden_size * 2.0
        fwd_ar = 2.0 * activation_bytes
        bwd_factor = 4.0 if ctx.training.activation_recompute else 2.0
        bwd_ar = bwd_factor * activation_bytes

        chunks = layer_chunks(ctx.model.num_layers, max_chunks=32)
        steps: List[Step] = []
        for start, count in chunks:
            steps.append(gemm_step(timings.fwd_layer * count,
                                   f"fwd_l{start}+{count}"))
            steps.append(elementwise_step(timings.elementwise_layer * count,
                                          f"fwd_ew_l{start}+{count}"))
            steps.append(CollectiveStep(
                key=f"tp_ar_fwd_l{start}", comm="tp",
                kind=CollectiveKind.ALL_REDUCE,
                payload_bytes=fwd_ar * count, blocking=True,
                op_count=2 * count,
            ))
        steps.append(gemm_step(timings.head_fwd, "lm_head_fwd"))
        steps.append(gemm_step(timings.head_bwd, "lm_head_bwd"))
        for start, count in reversed(chunks):
            if timings.recompute_layer:
                steps.append(gemm_step(timings.recompute_layer * count,
                                       f"recompute_l{start}+{count}"))
            steps.append(gemm_step(timings.bwd_layer * count,
                                   f"bwd_l{start}+{count}"))
            steps.append(CollectiveStep(
                key=f"tp_ar_bwd_l{start}", comm="tp",
                kind=CollectiveKind.ALL_REDUCE,
                payload_bytes=bwd_ar * count, blocking=True,
                op_count=2 * count,
            ))
            # ZeRO gradient sync for the TP shard across nodes.
            grad_kind = (CollectiveKind.REDUCE
                         if self.zero_stage.partitions_gradients
                         else CollectiveKind.ALL_REDUCE)
            steps.append(CollectiveStep(
                key=f"dp_grad_l{start}", comm="dp",
                kind=grad_kind,
                payload_bytes=shard_layer_bytes * count,
                blocking=False, op_count=count,
            ))
        steps.append(WaitPendingStep(name="gradient_sync"))
        compute = self.compute_model(ctx)
        partition = ctx.total_params / (
            mp * (dp if self.zero_stage.partitions_optimizer else 1))
        steps.append(optimizer_step(compute.optimizer_time(partition),
                                    "adam_shard"))
        if self.zero_stage.partitions_optimizer and dp > 1:
            steps.append(CollectiveStep(
                key="dp_allgather_params", comm="dp",
                kind=CollectiveKind.ALL_GATHER,
                payload_bytes=shard_total_bytes,
                blocking=True,
            ))
        steps.append(ComputeStep(KernelKind.ELEMENTWISE,
                                 self.calibration.fixed_overhead_s,
                                 "host_overhead"))

        ranks = list(range(ctx.world_size))
        tp_groups = [list(range(n * per_node, (n + 1) * per_node))
                     for n in range(ctx.cluster.num_nodes)]
        dp_groups = [[n * per_node + local for n in range(dp)]
                     for local in range(per_node)]
        return uniform_schedule(ranks, steps, {
            "tp": CommunicatorSpec("tp", tp_groups),
            "dp": CommunicatorSpec("dp", dp_groups),
        })


def hybrid_tp_zero1() -> HybridTpZeroStrategy:
    """Intra-node TP with inter-node ZeRO-1."""
    return HybridTpZeroStrategy(zero_stage=ZeroStage.OPTIMIZER)


def hybrid_tp_zero2() -> HybridTpZeroStrategy:
    """Intra-node TP with inter-node ZeRO-2."""
    return HybridTpZeroStrategy(zero_stage=ZeroStage.GRADIENTS)
