"""True pipeline parallelism with a 1F1B schedule (extension).

:class:`~repro.parallel.megatron.MegatronStrategy` reproduces the paper's
measured configuration with a *calibrated* bubble fraction.  This module
instead builds the classic one-forward-one-backward (1F1B) pipeline
schedule explicitly, per rank: each stage owns a contiguous block of
layers, micro-batches flow through keyed point-to-point activations and
gradients, and the executor's rendezvous machinery makes the fill/drain
bubbles *emerge* from the simulated dependencies instead of being
asserted.

Because a stage boundary moves only one micro-batch of activations, pure
pipeline parallelism sends orders of magnitude less inter-node traffic
than tensor parallelism — the extension experiment shows it sidesteps
the dual-node collapse the paper measured for Megatron-LM's TP=8.
"""

from __future__ import annotations

from typing import Dict, List

from .. import calibration
from ..collectives.primitives import CollectiveKind
from ..errors import ConfigurationError
from ..model.states import model_parallel_states
from ..runtime.kernels import KernelKind
from .schedule import (
    CollectiveStep,
    CommunicatorSpec,
    ComputeStep,
    IterationSchedule,
    Step,
    WaitPendingStep,
)
from .strategy import (
    MemoryPlan,
    StrategyContext,
    TrainingStrategy,
    elementwise_step,
    gemm_step,
    optimizer_step,
)


class PipelineParallelStrategy(TrainingStrategy):
    """GPipe-partitioned layers driven by a 1F1B micro-batch schedule."""

    name = "pipeline"
    display_name = "Pipeline (1F1B)"

    def __init__(self, *, micro_batches: int = 0) -> None:
        super().__init__(calibration.MEGATRON)
        #: micro-batches in flight per iteration; 0 = 2x stages (a common
        #: setting that keeps the bubble fraction near 1/(2m/p + 1)).
        self._micro_batches = micro_batches

    # -- degrees ------------------------------------------------------------
    def data_parallel_degree(self, ctx: StrategyContext) -> int:
        return 1

    def model_parallel_degree(self, ctx: StrategyContext) -> int:
        return ctx.world_size

    def micro_batches(self, ctx: StrategyContext) -> int:
        if self._micro_batches > 0:
            return self._micro_batches
        return 2 * ctx.world_size

    def stage_layers(self, ctx: StrategyContext) -> List[int]:
        """Layer count per stage (early stages take the remainder)."""
        stages = ctx.world_size
        base = ctx.model.num_layers // stages
        remainder = ctx.model.num_layers % stages
        return [base + (1 if s < remainder else 0) for s in range(stages)]

    # -- memory ----------------------------------------------------------------
    def memory_plan(self, ctx: StrategyContext) -> MemoryPlan:
        stages = ctx.world_size
        plan = self.base_gpu_plan(ctx, pipeline_parallel=stages)
        states = model_parallel_states(ctx.total_params, stages)
        plan.add_gpu("parameters", states.gpu_params)
        plan.add_gpu("gradients", states.gpu_grads)
        plan.add_gpu("optimizer_states", states.gpu_optimizer)
        self.host_base_plan(plan, ctx)
        return plan

    # -- schedule -----------------------------------------------------------------
    def build_schedule(self, ctx: StrategyContext) -> IterationSchedule:
        stages = ctx.world_size
        if stages < 2:
            raise ConfigurationError("pipeline parallelism needs >= 2 GPUs")
        if ctx.model.num_layers < stages:
            raise ConfigurationError(
                f"{ctx.model.num_layers} layers cannot fill {stages} stages"
            )
        m = self.micro_batches(ctx)
        timings = self.layer_timings(ctx)
        layers = self.stage_layers(ctx)

        # Each micro-batch carries total_tokens / m tokens.
        tokens_per_microbatch = ctx.total_tokens_per_iteration / m
        boundary_bytes = tokens_per_microbatch * ctx.model.hidden_size * 2.0
        # Per-micro-batch compute for one stage: its layer block scaled by
        # the micro-batch's share of the rank's tokens.
        scale = (tokens_per_microbatch
                 / (ctx.training.micro_batch_per_gpu * ctx.model.seq_length))

        steps_by_rank: Dict[int, List[Step]] = {}
        communicators = {
            f"ppb{s}": CommunicatorSpec(f"ppb{s}", [[s, s + 1]])
            for s in range(stages - 1)
        }
        for stage in range(stages):
            steps_by_rank[stage] = self._stage_steps(
                ctx, stage, stages, m, layers[stage], timings, scale,
                boundary_bytes,
            )
        return IterationSchedule(steps_by_rank=steps_by_rank,
                                 communicators=communicators)

    def _stage_steps(self, ctx, stage, stages, m, local_layers, timings,
                     scale, boundary_bytes) -> List[Step]:
        fwd_t = timings.fwd_layer * local_layers * scale
        ew_t = timings.elementwise_layer * local_layers * scale
        bwd_t = ((timings.bwd_layer + timings.recompute_layer)
                 * local_layers * scale)
        head_fwd = timings.head_fwd * scale if stage == stages - 1 else 0.0
        head_bwd = timings.head_bwd * scale if stage == stages - 1 else 0.0

        steps: List[Step] = []

        def recv_activation(mb):
            steps.append(CollectiveStep(
                key=f"act_mb{mb}_b{stage - 1}", comm=f"ppb{stage - 1}",
                kind=CollectiveKind.SEND_RECV,
                payload_bytes=boundary_bytes, blocking=True,
            ))

        def send_activation(mb):
            steps.append(CollectiveStep(
                key=f"act_mb{mb}_b{stage}", comm=f"ppb{stage}",
                kind=CollectiveKind.SEND_RECV,
                payload_bytes=boundary_bytes, blocking=False,
            ))

        def recv_gradient(mb):
            steps.append(CollectiveStep(
                key=f"grad_mb{mb}_b{stage}", comm=f"ppb{stage}",
                kind=CollectiveKind.SEND_RECV,
                payload_bytes=boundary_bytes, blocking=True,
            ))

        def send_gradient(mb):
            steps.append(CollectiveStep(
                key=f"grad_mb{mb}_b{stage - 1}", comm=f"ppb{stage - 1}",
                kind=CollectiveKind.SEND_RECV,
                payload_bytes=boundary_bytes, blocking=False,
            ))

        def forward(mb):
            if stage > 0:
                recv_activation(mb)
            steps.append(gemm_step(fwd_t, f"fwd_mb{mb}"))
            steps.append(elementwise_step(ew_t, f"fwd_ew_mb{mb}"))
            if stage < stages - 1:
                send_activation(mb)
            else:
                steps.append(gemm_step(head_fwd, f"lm_head_fwd_mb{mb}"))

        def backward(mb):
            if stage < stages - 1:
                recv_gradient(mb)
            else:
                steps.append(gemm_step(head_bwd, f"lm_head_bwd_mb{mb}"))
            steps.append(gemm_step(bwd_t, f"bwd_mb{mb}"))
            if stage > 0:
                send_gradient(mb)

        # --- the 1F1B schedule -------------------------------------------
        warmup = min(stages - stage - 1, m)
        for mb in range(warmup):
            forward(mb)
        for mb in range(warmup, m):
            forward(mb)
            backward(mb - warmup)
        for mb in range(m - warmup, m):
            backward(mb)

        steps.append(WaitPendingStep(name="pipeline_flush"))
        compute = self.compute_model(ctx)
        steps.append(optimizer_step(
            compute.optimizer_time(ctx.total_params / stages), "adam_stage"
        ))
        steps.append(ComputeStep(KernelKind.ELEMENTWISE,
                                 self.calibration.fixed_overhead_s,
                                 "host_overhead"))
        return steps


def pipeline_1f1b(micro_batches: int = 0) -> PipelineParallelStrategy:
    """A pure pipeline-parallel strategy with the 1F1B schedule."""
    return PipelineParallelStrategy(micro_batches=micro_batches)
