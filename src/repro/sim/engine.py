"""Discrete-event simulation kernel.

A minimal, dependency-free engine in the style of SimPy: *processes* are
Python generators that ``yield`` awaitable events — :class:`Timeout`,
manually-triggered :class:`SimEvent`, :class:`AllOf`/:class:`AnyOf`
combinators, or other processes.  The engine advances a virtual clock and
resumes processes as their awaited events fire.

The training executor (:mod:`repro.runtime.executor`) runs one process per
GPU rank plus helper processes for offload engines; the fluid-flow network
(:mod:`repro.sim.flows`) schedules flow-completion events on the same
engine.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Generator,
    Iterable,
    List,
    Optional,
    Tuple,
)

from ..errors import SimulationError
from ..units import Seconds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .sanitizer import ScheduleSanitizer


class TieOrder:
    """Policy ordering callbacks scheduled at the *same* timestamp.

    Events sharing a simulated instant have no defined mutual order: the
    engine's FIFO default (insertion ``seq``) is one legal schedule among
    many, and a correct simulation must produce the same physics under any
    of them.  The determinism sanitizer's perturbation differ
    (:mod:`repro.analysis.determinism.differ`) reruns a configuration under
    the alternates below and field-diffs the results; divergence is a
    confirmed scheduling race.

    ``key(seq)`` returns the secondary sort key used between equal
    timestamps; ``seq`` itself stays in the heap tuple as the final
    tie-breaker so every order is total and reproducible.
    """

    name = "fifo"

    def key(self, seq: int) -> float:
        return 0.0


class ReversedTies(TieOrder):
    """Run same-timestamp callbacks in reverse insertion order."""

    name = "reversed"

    def key(self, seq: int) -> float:
        return float(-seq)


class SeededTies(TieOrder):
    """Permute same-timestamp callbacks with a seeded PRNG.

    The key derives from ``seed`` and ``seq`` only (never ``hash()`` or
    ``id()``), so one seed always produces the same legal permutation.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self.name = f"seeded[{self.seed}]"

    def key(self, seq: int) -> float:
        return random.Random(self.seed * 1_000_003 + seq).random()


class BaseEvent:
    """Something a process can wait on.

    An event fires at most once; at that point its ``value`` becomes
    available and all registered callbacks run.  Processes register
    themselves as callbacks when they yield an event.
    """

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.callbacks: List[Callable[["BaseEvent"], None]] = []
        self.triggered = False
        self.value: Any = None

    def succeed(self, value: Any = None) -> "BaseEvent":
        """Fire the event now, delivering ``value`` to waiters."""
        if self.triggered:
            raise SimulationError("event has already been triggered")
        self.triggered = True
        self.value = value
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)
        return self

    def add_callback(self, callback: Callable[["BaseEvent"], None]) -> None:
        if self.triggered:
            # Fire-and-forget: deliver immediately on the current turn.
            callback(self)
        else:
            self.callbacks.append(callback)


class SimEvent(BaseEvent):
    """A bare event triggered explicitly by simulation code."""


class Timeout(BaseEvent):
    """An event that fires ``delay`` seconds after creation."""

    def __init__(self, engine: "Engine", delay: Seconds, value: Any = None) -> None:
        super().__init__(engine)
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.delay = delay
        engine.schedule_at(engine.now + delay, self.succeed, value)


class AllOf(BaseEvent):
    """Fires when every child event has fired; value is the list of values."""

    def __init__(self, engine: "Engine", events: Iterable[BaseEvent]) -> None:
        super().__init__(engine)
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            engine.schedule_at(engine.now, self.succeed, [])
            return
        for event in self._children:
            event.add_callback(self._child_fired)

    @property
    def num_children(self) -> int:
        return len(self._children)

    @property
    def pending_children(self) -> List[BaseEvent]:
        """Children that have not fired yet (liveness diagnostics)."""
        return [child for child in self._children if not child.triggered]

    def _child_fired(self, _event: BaseEvent) -> None:
        self._pending -= 1
        if self._pending == 0 and not self.triggered:
            self.succeed([child.value for child in self._children])


class AnyOf(BaseEvent):
    """Fires when the first child event fires; value is that child's value."""

    def __init__(self, engine: "Engine", events: Iterable[BaseEvent]) -> None:
        super().__init__(engine)
        self._children = list(events)
        if not self._children:
            raise SimulationError("AnyOf requires at least one event")
        for event in self._children:
            event.add_callback(self._child_fired)

    @property
    def num_children(self) -> int:
        return len(self._children)

    def _child_fired(self, event: BaseEvent) -> None:
        if self.triggered:
            return
        # Detach from the losing children: without this, a later succeed()
        # on a loser still reaches the already-triggered combinator, and
        # liveness diagnostics would see stale waiter callbacks on events
        # nothing is actually waiting for.
        for child in self._children:
            if child is not event and not child.triggered:
                try:
                    child.callbacks.remove(self._child_fired)
                except ValueError:
                    pass
        self.succeed(event.value)


class BatchHandler:
    """A schedulable callback whose same-timestamp runs may be folded.

    ``single(*args)`` handles one scheduled occurrence.  ``fold(batch)``
    receives the argument tuples of a *run* of occurrences popped
    back-to-back at one timestamp and must be observably equivalent to
    calling ``single`` on each in order.  The engine only folds adjacent
    pops of the same handler instance, so nothing else executes between
    the folded occurrences — that adjacency is exactly what makes the
    equivalence a local contract of the handler rather than a property
    of the whole schedule.

    The flow network registers its activation path as a ``BatchHandler``
    so a collective launching N flows at one instant costs one
    settle/reallocate round instead of N (see
    :meth:`repro.sim.flows.FlowNetwork._activate_batch`).
    """

    __slots__ = ("single", "fold", "__name__", "__qualname__")

    def __init__(self, single: Callable[..., None],
                 fold: Callable[[List[Tuple[Any, ...]]], None]) -> None:
        self.single = single
        self.fold = fold
        # Deterministic labels for sanitizer/liveness diagnostics (the
        # default repr embeds a memory address).
        self.__name__ = getattr(single, "__name__", "batch_handler")
        self.__qualname__ = getattr(single, "__qualname__", self.__name__)

    def __call__(self, *args: Any) -> None:
        self.single(*args)


ProcessGenerator = Generator[BaseEvent, Any, Any]


class Process(BaseEvent):
    """A running generator-based process.

    The process's generator yields events; when an awaited event fires the
    generator is resumed with the event's value.  The Process itself is an
    event that fires with the generator's return value, so processes can
    wait on each other.
    """

    def __init__(self, engine: "Engine", generator: ProcessGenerator,
                 name: str = "") -> None:
        super().__init__(engine)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: the event this process is currently suspended on, or None while
        #: runnable/finished — what the liveness diagnostics report when a
        #: run ends with this process still pending.
        self.waiting_on: Optional[BaseEvent] = None
        engine.register_process(self)
        engine.schedule_at(engine.now, self._resume, None)

    def _resume(self, send_value: Any) -> None:
        self.waiting_on = None
        try:
            target = self.generator.send(send_value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if not isinstance(target, BaseEvent):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, not an event"
            )
        self.waiting_on = target
        target.add_callback(lambda event: self._resume(event.value))


class Engine:
    """The event loop: a priority queue of (time, tie_key, seq, callback).

    ``tie_order`` perturbs the order of same-timestamp callbacks (see
    :class:`TieOrder`); the default is FIFO by insertion ``seq``.  An
    attached :class:`~repro.sim.sanitizer.ScheduleSanitizer` observes every
    popped callback and the shared resources it touches.
    """

    #: Class-level switch for same-timestamp batch folding; differential
    #: tests flip it off to compare folded vs. unfolded execution.
    fold_events = True

    def __init__(self, tie_order: Optional[TieOrder] = None) -> None:
        self.now: Seconds = 0.0
        self._queue: List[
            Tuple[float, float, int, Callable[..., None], Tuple[Any, ...]]
        ] = []
        self._counter = itertools.count()
        self._processed = 0
        self._folded = 0
        self._processes: List["Process"] = []
        self._start_hooks: List[Callable[["Engine"], None]] = []
        self.tie_order = tie_order if tie_order is not None else TieOrder()
        #: opt-in schedule sanitizer; None keeps the hot path untouched
        self.sanitizer: Optional["ScheduleSanitizer"] = None

    def note_touch(self, resource: str) -> None:
        """Tell the attached sanitizer the current callback touched a
        shared resource (a link ledger, the flow allocator, the fault
        injector).  No-op without a sanitizer."""
        if self.sanitizer is not None:
            self.sanitizer.touch(resource)

    def register_process(self, process: "Process") -> None:
        self._processes.append(process)

    def add_start_hook(self, hook: Callable[["Engine"], None]) -> None:
        """Register a callback invoked once when :meth:`run` first drains.

        This is how external subsystems arm themselves against a run they
        did not build: the fault injector (:mod:`repro.faults`) uses it to
        schedule its fault apply/revert callbacks onto the queue at the
        moment the simulation actually starts, whatever ``now`` is then.
        """
        self._start_hooks.append(hook)

    @property
    def processes(self) -> Tuple["Process", ...]:
        """Every process ever started on this engine, in start order."""
        return tuple(self._processes)

    # -- scheduling primitives -------------------------------------------------
    def schedule_at(self, time: Seconds, callback: Callable[..., None],
                    *args: Any) -> None:
        if time < self.now - 1e-12:
            raise SimulationError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        seq = next(self._counter)
        heapq.heappush(
            self._queue,
            (max(time, self.now), self.tie_order.key(seq), seq, callback, args),
        )

    # -- user-facing factories ------------------------------------------------
    def timeout(self, delay: Seconds, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> SimEvent:
        return SimEvent(self)

    def all_of(self, events: Iterable[BaseEvent]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[BaseEvent]) -> AnyOf:
        return AnyOf(self, events)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        return Process(self, generator, name)

    # -- execution ---------------------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Callbacks executed, counting each folded occurrence.

        Folded batches count at their original multiplicity (a batch of
        N scheduled occurrences dispatched once still adds N), so the
        events/sec trajectory in ``benchmarks/`` stays apples-to-apples
        across the batching change.
        """
        return self._processed

    @property
    def events_folded(self) -> int:
        """Scheduled occurrences absorbed into batch dispatches.

        A batch of N adds N-1 here (one dispatch stood for N pops).
        """
        return self._folded

    def peek(self) -> Optional[Seconds]:
        """Time of the next scheduled callback, or None when idle."""
        return self._queue[0][0] if self._queue else None

    def step(self) -> None:
        """Run the next callback (or folded batch), advancing the clock."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        time, _key, seq, callback, args = heapq.heappop(self._queue)
        self.now = time
        # Fold an adjacent same-timestamp run of the same BatchHandler
        # into one dispatch.  Sanitized runs never fold: the sanitizer
        # must observe every scheduled callback individually, and its
        # unbatched execution is the reference the batched path is
        # differentially tested against.
        queue = self._queue
        if (self.fold_events and self.sanitizer is None
                and type(callback) is BatchHandler and queue
                and queue[0][0] == time and queue[0][3] is callback):
            batch = [args]
            while queue and queue[0][0] == time and queue[0][3] is callback:
                batch.append(heapq.heappop(queue)[4])
            self._processed += len(batch)
            self._folded += len(batch) - 1
            callback.fold(batch)
            return
        self._processed += 1
        if self.sanitizer is None:
            callback(*args)
        else:
            self.sanitizer.begin_callback(time, seq, callback)
            try:
                callback(*args)
            finally:
                self.sanitizer.end_callback()

    def run(self, until: Optional[float] = None,
            max_events: int = 50_000_000) -> float:
        """Drain the queue (optionally stopping at simulated time ``until``).

        Returns the final simulated time.  ``max_events`` guards against
        runaway schedules.
        """
        if self._start_hooks:
            hooks, self._start_hooks = self._start_hooks, []
            for hook in hooks:
                hook(self)
        budget = max_events
        while self._queue:
            if until is not None and self._queue[0][0] > until:
                self.now = until
                return self.now
            if budget <= 0:
                raise SimulationError(
                    f"exceeded max_events={max_events} at t={self.now}"
                )
            before = self._processed
            self.step()
            budget -= self._processed - before
        if until is not None:
            self.now = max(self.now, until)
        return self.now
