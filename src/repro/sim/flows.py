"""Fluid-flow transfer network with weighted max-min fair sharing.

Transfers are *flows*: a byte count streaming over a
:class:`~repro.hardware.topology.Route`.  Concurrent flows share link
capacity by weighted max-min fairness, recomputed whenever a flow starts or
finishes (the standard fluid approximation for congestion-controlled
fabrics such as NVLink, PCIe, and RoCE with PFC).

SerDes contention (Section III-C4 of the paper) enters as a *consumption
weight*: a flow whose route is derated to fraction ``d`` consumes ``1/d``
units of pool capacity per delivered byte, so a contended path attains
``d x`` the link bandwidth whether one flow or many use it — matching the
stress-test observation that four kernels together reach only ~47-52 % of
theoretical.

Every settled interval is recorded into each traversed link's
:class:`~repro.hardware.link.BandwidthLedger`, which is where the paper's
Table IV statistics and Figs. 9/10/12 time-series come from.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Set, Tuple

from ..errors import SimulationError
from ..units import Bytes, BytesPerSecond
from ..hardware.link import Link
from ..hardware.topology import Route
from ..hardware.serdes import TrafficProfile
from .engine import BaseEvent, BatchHandler, Engine, SimEvent

#: Pools are per link and per direction; half-duplex links share pool 0.
PoolKey = Tuple[Link, int]


class Flow:
    """One in-flight transfer."""

    _ids = itertools.count()

    def __init__(self, route: Route, num_bytes: Bytes, *,
                 profile: TrafficProfile, cap: Optional[BytesPerSecond],
                 label: str = "", weight_multiplier: float = 1.0) -> None:
        if weight_multiplier < 1.0:
            raise SimulationError("weight_multiplier must be >= 1")
        self.id = next(Flow._ids)
        self.route = route
        self.label = label
        self.profile = profile
        self.bytes_total = float(num_bytes)
        self.bytes_remaining = float(num_bytes)
        self._user_cap = cap
        self.weight_multiplier = weight_multiplier
        self.weight = 1.0
        self.cap = float("inf")
        self.rate = 0.0
        self.completion: Optional[SimEvent] = None
        self.started_at: Optional[float] = None
        self.refresh_capacity()

    #: residues below this are floating-point dust, not real payload
    EPSILON_BYTES = 1e-3

    @property
    def done(self) -> bool:
        return self.bytes_remaining <= self.EPSILON_BYTES

    def refresh_capacity(self) -> None:
        """Recompute ``weight`` and ``cap`` from the route's current state.

        Link capacities are time-varying under fault injection, so both
        values are refreshed on every rate allocation:

        * ``weight`` — extra pool capacity consumed per delivered byte
          (>= 1).  ``weight_multiplier`` models protocol inefficiency
          (e.g. NCCL's proxy path over RoCE): the aggregate attainable
          rate over a pool scales down by the multiplier no matter how
          many flows pile on.
        * ``cap`` — hard per-flow rate ceiling: the derated route
          bandwidth, further clamped by any caller-supplied cap (e.g.
          NVMe media bandwidth).  A fully-down link on the route pins the
          cap to zero; the flow stalls until the link is restored.
        """
        if not self.route.links:
            self.weight = 1.0
            self.cap = (
                float("inf") if self._user_cap is None else self._user_cap
            )
            return
        derate = self.route.bandwidth(self.profile)
        if derate <= 0.0:
            self.weight = self.weight_multiplier
            self.cap = 0.0
            return
        bottleneck = min(
            link.capacity_per_direction for link in self.route.links
        )
        self.weight = bottleneck / derate * self.weight_multiplier
        self.cap = (
            derate if self._user_cap is None else min(derate, self._user_cap)
        )


class FlowNetwork:
    """Shares link capacity among active flows and completes them in order."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._active: Set[Flow] = set()
        self._generation = 0
        self._last_update = engine.now
        self.completed_flows = 0
        self.total_bytes_moved = 0.0
        #: optional :class:`repro.trace.TraceRecorder`.  Its hooks only
        #: append to Python lists — they never schedule events or touch
        #: engine state — so an attached recorder cannot perturb the
        #: simulated schedule.
        self.recorder = None
        #: optional :class:`repro.sim.leaksan.LeakSanitizer`.  Same
        #: invariant as the recorder: its hooks shadow flow lifecycles
        #: with ledger reservations (pure bookkeeping — never admission
        #: control) and cannot perturb the simulated schedule.
        self.leaksan = None
        #: Batchable activation: a collective launching N flows at one
        #: instant folds into a single settle + N adds + one reallocate,
        #: replacing N full water-filling rounds (see
        #: :class:`~repro.sim.engine.BatchHandler`).
        self._activate = BatchHandler(self._activate_one,
                                      self._activate_batch)

    # -- public API -------------------------------------------------------------
    def transfer(self, route: Route, num_bytes: Bytes, *,
                 profile: TrafficProfile = TrafficProfile.BURSTY,
                 cap: Optional[BytesPerSecond] = None,
                 label: str = "",
                 weight_multiplier: float = 1.0) -> BaseEvent:
        """Start a transfer; returns an event fired at completion.

        The flow begins streaming after the route's end-to-end latency.
        Zero-byte or loopback transfers complete after just the latency.
        """
        event = self.engine.event()
        if num_bytes <= 0 or route.is_loopback:
            delay = 0.0 if route.is_loopback else route.latency()
            self.engine.schedule_at(self.engine.now + delay, event.succeed, None)
            return event
        flow = Flow(route, num_bytes, profile=profile, cap=cap, label=label,
                    weight_multiplier=weight_multiplier)
        flow.completion = event
        self.engine.schedule_at(
            self.engine.now + route.latency(), self._activate, flow
        )
        return event

    @property
    def active_count(self) -> int:
        return len(self._active)

    def settle(self) -> None:
        """Account in-flight transfers up to the current simulated time.

        Ledger records are normally written when flows start or finish;
        open-ended measurements (the stress tests run flows that outlive
        the measurement window) call this before reading the ledgers.
        """
        self._settle()

    def rebalance(self) -> None:
        """Recompute fair-share rates after an external capacity change.

        The fault injector calls :meth:`settle` *before* degrading or
        restoring link capacity (so in-flight intervals are accounted at
        the rates that actually applied) and this afterwards, so every
        active flow's rate reflects the new capacities from this instant.
        """
        self._settle()
        self._reallocate()

    def _ordered_active(self) -> List[Flow]:
        """Active flows in creation order.

        ``_active`` is a set of objects whose iteration order follows
        memory addresses; every float accumulation over the flows must
        instead use this deterministic order, or repeated runs of the
        same configuration drift in the last ulp.
        """
        return sorted(self._active, key=lambda flow: flow.id)

    # -- internals -----------------------------------------------------------------
    def _activate_one(self, flow: Flow) -> None:
        flow.started_at = self.engine.now
        if self.recorder is not None:
            self.recorder.flow_started(flow)
        if self.leaksan is not None:
            self.leaksan.flow_opened(flow)
        self.engine.note_touch("flows:allocator")
        self._settle()
        self._active.add(flow)
        self._reallocate()

    def _activate_batch(self, batch: List[Tuple[Flow]]) -> None:
        """Activate a same-timestamp run of flows with one allocation.

        Equivalent to :meth:`_activate_one` per flow in order: between
        same-timestamp activations no simulated time elapses, so the
        intermediate ``_settle`` calls account nothing and the
        intermediate rate allocations never apply (their completion
        checks are superseded by ``_generation``).  Only the final
        allocation over the full flow set has observable effect — which
        is exactly what this computes once.
        """
        self.engine.note_touch("flows:allocator")
        self._settle()
        for (flow,) in batch:
            flow.started_at = self.engine.now
            if self.recorder is not None:
                self.recorder.flow_started(flow)
            if self.leaksan is not None:
                self.leaksan.flow_opened(flow)
            self._active.add(flow)
        self._reallocate()

    def _settle(self) -> None:
        """Account bytes moved since the last change at the current rates."""
        now = self.engine.now
        elapsed = now - self._last_update
        if elapsed > 0:
            for flow in self._ordered_active():
                moved = min(flow.rate * elapsed, flow.bytes_remaining)
                if moved > 0:
                    for link in flow.route.links:
                        self.engine.note_touch(f"ledger:{link.name}")
                    # Absorb floating-point dust: crediting rate x elapsed
                    # can undershoot the true remainder by ~1 ulp, which
                    # would otherwise strand a nanobyte whose completion
                    # time rounds to zero clock advance.
                    if flow.bytes_remaining - moved <= Flow.EPSILON_BYTES:
                        moved = flow.bytes_remaining
                    flow.bytes_remaining -= moved
                    self.total_bytes_moved += moved
                    flow.route.record(now - elapsed, now, moved)
        self._last_update = now

    def _reallocate(self) -> None:
        """Weighted max-min fair rates, then schedule the next completion."""
        self.engine.note_touch("flows:allocator")
        self._generation += 1
        finished = [flow for flow in self._ordered_active() if flow.done]
        for flow in finished:
            self._active.discard(flow)
            self.completed_flows += 1
            if self.recorder is not None:
                self.recorder.flow_finished(flow, self.engine.now)
            if self.leaksan is not None:
                self.leaksan.flow_closed(flow, self.engine.now)
            assert flow.completion is not None
            flow.completion.succeed(None)
        if not self._active:
            return
        self._compute_rates()
        self._schedule_next_completion()

    def _compute_rates(self) -> None:
        ordered = self._ordered_active()
        pools: Dict[PoolKey, float] = {}
        pool_members: Dict[PoolKey, List[Flow]] = {}
        for flow in ordered:
            # Link capacities may have changed since the last allocation
            # (fault injection); re-derive the flow's ceiling and weight.
            flow.refresh_capacity()
            for key in self._pool_keys(flow.route):
                if key not in pools:
                    link = key[0]
                    pools[key] = link.capacity_per_direction
                pool_members.setdefault(key, []).append(flow)
        rates = {flow: 0.0 for flow in ordered}
        unfrozen = set(ordered)
        guard = len(self._active) + len(pools) + 4
        while unfrozen and guard > 0:
            guard -= 1
            delta = min(
                (flow.cap - rates[flow] for flow in unfrozen),
                default=float("inf"),
            )
            limiting_pools: List[PoolKey] = []
            for key, remaining in pools.items():
                members = [f for f in pool_members[key] if f in unfrozen]
                if not members:
                    continue
                weight_sum = sum(f.weight for f in members)
                share = remaining / weight_sum
                if share < delta - 1e-15:
                    delta = share
                    limiting_pools = [key]
                elif abs(share - delta) <= 1e-15:
                    limiting_pools.append(key)
            if delta == float("inf"):
                break
            delta = max(delta, 0.0)
            for flow in unfrozen:
                rates[flow] += delta
            for key in pools:
                members = [f for f in pool_members[key] if f in unfrozen]
                pools[key] -= delta * sum(f.weight for f in members)
            newly_frozen = {
                flow for flow in unfrozen if rates[flow] >= flow.cap - 1e-9
            }
            for key in limiting_pools:
                newly_frozen.update(
                    f for f in pool_members[key] if f in unfrozen
                )
            if not newly_frozen:
                break
            unfrozen -= newly_frozen
        for flow, rate in rates.items():
            flow.rate = rate

    def _schedule_next_completion(self) -> None:
        soonest = float("inf")
        for flow in self._active:
            if flow.rate > 0:
                soonest = min(soonest, flow.bytes_remaining / flow.rate)
        if soonest == float("inf"):
            if any(flow.cap <= 0.0 for flow in self._active):
                # Every runnable flow is stalled behind a fully-down link.
                # No completion can be scheduled; the fault injector's
                # restore callback will rebalance and resume them.  If no
                # restore is pending the engine drains and the liveness
                # diagnostics name the stalled processes.
                return
            raise SimulationError(
                "active flows exist but none has a positive rate"
            )
        # Guarantee measurable clock advance even for residual payloads.
        soonest = max(soonest, 1e-12)
        generation = self._generation
        self.engine.schedule_at(
            self.engine.now + soonest, self._on_completion_check, generation
        )

    def _on_completion_check(self, generation: int) -> None:
        if generation != self._generation:
            return  # superseded by a newer allocation epoch
        self._settle()
        self._reallocate()

    @staticmethod
    def _pool_keys(route: Route) -> List[PoolKey]:
        """Per-direction pool keys for every link along the route."""
        keys: List[PoolKey] = []
        cursor = route.source
        for link in route.links:
            if link.endpoint_a == cursor:
                direction = 0
                cursor = link.endpoint_b
            else:
                direction = 1
                cursor = link.endpoint_a
            if not link.spec.duplex:
                direction = 0
            keys.append((link, direction))
        return keys
