"""Discrete-event simulation kernel and fluid-flow transfer network."""

from .engine import AllOf, AnyOf, BaseEvent, Engine, Process, SimEvent, Timeout
from .flows import Flow, FlowNetwork

__all__ = [
    "AllOf",
    "AnyOf",
    "BaseEvent",
    "Engine",
    "Flow",
    "FlowNetwork",
    "Process",
    "SimEvent",
    "Timeout",
]
