"""Discrete-event simulation kernel and fluid-flow transfer network."""

from .engine import (
    AllOf,
    AnyOf,
    BaseEvent,
    Engine,
    Process,
    ReversedTies,
    SeededTies,
    SimEvent,
    TieOrder,
    Timeout,
)
from .flows import Flow, FlowNetwork
from .sanitizer import SanitizerReport, ScheduleSanitizer, TieConflict

__all__ = [
    "AllOf",
    "AnyOf",
    "BaseEvent",
    "Engine",
    "Flow",
    "FlowNetwork",
    "Process",
    "ReversedTies",
    "SanitizerReport",
    "ScheduleSanitizer",
    "SeededTies",
    "SimEvent",
    "TieConflict",
    "TieOrder",
    "Timeout",
]
