"""DES fast path: memoized collectives, event batching, hybrid fidelity.

Three independent accelerations, composable and all semantics-preserving
(see DESIGN.md, "Fast path & fidelity"):

* **Collective cost memoization** (:mod:`.memo`) — closed-form collective
  cost evaluations are cached on a key covering everything the cost
  depends on: the collective kind and payload, the participant ranks,
  the topology fingerprint, and the current degradation stamp.  The hot
  DES path gets the same treatment inside
  :class:`~repro.collectives.nccl.NcclCommunicator`, which memoizes each
  collective's *launch plan* (routes, per-link bytes, weights, step
  latency) so repeated launches stop re-walking the ring structure.
* **Homogeneous event batching** (:class:`~repro.sim.engine.BatchHandler`)
  — runs of same-timestamp occurrences of the same handler fold into a
  single dispatch; the flow network uses it to activate all of a
  collective's flows with one settle/reallocate round instead of N.
* **Steady-state extrapolation** (:mod:`.extrapolate`) — opt-in via
  ``fidelity="hybrid"``: simulate warmup + 2 iterations at full
  fidelity, verify the measured iterations are periodic, then replicate
  the last measured iteration analytically for the remaining count.

``fidelity`` threads from :class:`repro.api.RunSpec` /
:class:`repro.experiments.common.ExperimentSpec` down to
:func:`repro.core.runner.run_training`; :func:`fidelity_override` is the
ambient channel the experiment registry uses so all experiment modules
inherit a requested fidelity without each taking a new parameter.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from ...errors import ConfigurationError

#: Supported run fidelities.  ``full`` simulates every iteration on the
#: DES; ``hybrid`` simulates warmup + 2 measured iterations and
#: extrapolates the rest once steady state is confirmed.
FIDELITIES = ("full", "hybrid")


def validate_fidelity(fidelity: str) -> str:
    if fidelity not in FIDELITIES:
        raise ConfigurationError(
            f"unknown fidelity {fidelity!r} (expected one of {FIDELITIES})"
        )
    return fidelity


@dataclass(frozen=True)
class FastpathReport:
    """What the hybrid fast path actually did for one run.

    ``applied`` is True only when the extrapolator replaced simulated
    iterations with analytic ones.  A hybrid request that could not be
    honoured (fault plan present, too few iterations, steady state not
    detected) still produces full-fidelity results; ``fallback_reason``
    says why the shortcut was declined.
    """

    fidelity: str
    applied: bool
    simulated_iterations: int
    extrapolated_iterations: int
    fallback_reason: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "fidelity": self.fidelity,
            "applied": self.applied,
            "simulated_iterations": self.simulated_iterations,
            "extrapolated_iterations": self.extrapolated_iterations,
            "fallback_reason": self.fallback_reason,
        }


#: Ambient fidelity stack; the top entry (when any) is the default for
#: ``run_training`` calls that do not pass an explicit fidelity.
_AMBIENT: List[str] = []


@contextmanager
def fidelity_override(fidelity: str) -> Iterator[None]:
    """Make ``fidelity`` the ambient default for nested training runs.

    The experiment registry wraps module ``run`` calls in this so every
    ``run_training`` an experiment performs inherits the requested
    fidelity without threading a parameter through all 29 modules.
    """
    validate_fidelity(fidelity)
    _AMBIENT.append(fidelity)
    try:
        yield
    finally:
        _AMBIENT.pop()


def ambient_fidelity() -> Optional[str]:
    """The innermost :func:`fidelity_override` value, or ``None``."""
    return _AMBIENT[-1] if _AMBIENT else None


from .memo import (  # noqa: E402  (re-exports after the light definitions)
    COST_CACHE,
    CollectiveCostCache,
    collective_cost_key,
)
from .extrapolate import (  # noqa: E402
    HYBRID_MEASURE_ITERATIONS,
    STEADY_STATE_RTOL,
    extrapolate_execution,
    hybrid_simulated_iterations,
    is_steady,
)

__all__ = [
    "COST_CACHE",
    "CollectiveCostCache",
    "FIDELITIES",
    "FastpathReport",
    "HYBRID_MEASURE_ITERATIONS",
    "STEADY_STATE_RTOL",
    "ambient_fidelity",
    "collective_cost_key",
    "extrapolate_execution",
    "fidelity_override",
    "hybrid_simulated_iterations",
    "is_steady",
    "validate_fidelity",
]
