"""Memoized collective cost-model evaluations.

:class:`CollectiveCostCache` caches the closed-form collective cost
(:meth:`repro.collectives.nccl.NcclCommunicator.estimate`) across
communicators, runs, and jobs.  Correctness rests entirely on the key
covering every input the cost depends on:

``(collective kind, payload bytes, participant ranks, algorithm,
traffic profile, launch overheads, inter-node rate efficiency,
topology fingerprint, degradation stamp)``

* The **topology fingerprint**
  (:meth:`repro.hardware.topology.Topology.fingerprint`) hashes the
  static fabric — device names, link endpoints, counts, classes, rated
  bandwidths, latencies, efficiencies, duplexity, and the SerDes
  contention parameters — so two clusters built from the same preset
  share entries while any wiring difference separates them.
* The **degradation stamp**
  (:meth:`~repro.hardware.topology.Topology.degradation_stamp`) is the
  current ``(link, capacity_fraction)`` set of degraded links.  A fault
  degrading a link changes the stamp (entries computed on the healthy
  fabric cannot be served stale); the fault reverting restores the
  empty stamp, re-validating the healthy entries.

Entries are deterministic pure floats, so a hit is byte-identical to a
recompute — the property-based tests in ``tests/test_fastpath_memo.py``
pin this across strategies, sizes, and degraded fabrics.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

CostKey = Tuple[object, ...]


def collective_cost_key(*, kind: str, payload_bytes: float,
                        participants: Tuple[int, ...], algorithm: str,
                        profile: str, internode_launch_overhead: float,
                        intranode_launch_overhead: float,
                        internode_rate_efficiency: float,
                        topology_fingerprint: str,
                        degradation_stamp: Tuple[Tuple[str, float], ...]
                        ) -> CostKey:
    """The full memoization key for one collective cost evaluation."""
    return (
        kind, payload_bytes, participants, algorithm, profile,
        internode_launch_overhead, intranode_launch_overhead,
        internode_rate_efficiency, topology_fingerprint, degradation_stamp,
    )


class CollectiveCostCache:
    """A bounded, instrumented memo table for collective cost evaluations.

    ``lookup`` either returns the cached value or computes, stores, and
    returns it.  The cache is semantics-free by construction (the key
    covers every cost input); ``enabled`` exists so differential tests
    can compare cached and uncached evaluation paths.
    """

    def __init__(self, maxsize: int = 65536) -> None:
        self.maxsize = maxsize
        self.enabled = True
        self.hits = 0
        self.misses = 0
        self._data: Dict[CostKey, float] = {}

    def __len__(self) -> int:
        return len(self._data)

    def lookup(self, key: CostKey, compute: Callable[[], float]) -> float:
        if not self.enabled:
            return compute()
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            value = compute()
            if len(self._data) < self.maxsize:
                self._data[key] = value
            return value
        self.hits += 1
        return value

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._data)}


#: The process-wide cost cache every communicator shares.  Keys embed the
#: topology fingerprint, so entries from different clusters coexist.
COST_CACHE = CollectiveCostCache()
