"""Steady-state detection and analytic iteration extrapolation.

The hybrid fidelity path simulates ``warmup + HYBRID_MEASURE_ITERATIONS``
optimizer steps at full fidelity, then asks :func:`is_steady` whether
the measured (post-warmup) iterations are periodic.  Training schedules
here are deterministic and state-free across iterations, so on a
fault-free fabric every post-warmup iteration is an exact time-shifted
copy of the previous one; the detector's tolerance
(:data:`STEADY_STATE_RTOL`) only absorbs floating-point drift from
accumulating the simulation clock.  Anything that genuinely perturbs an
iteration — an injected fault window, a straggler, a link flap — shows
up orders of magnitude above the tolerance and forces the full-fidelity
fallback.

Once steady, :func:`extrapolate_execution` replicates the **last
measured iteration** forward in place, keeping every downstream consumer
consistent without special cases:

* each link ledger's records from the steady window are replicated
  shifted by ``k * period`` (same bytes, same degraded stamps, same
  record count per iteration — the perturbation differ compares ledger
  record counts and byte totals, so replication must be exact, not
  aggregated); the ledger stores the replication as a lazy block
  (:meth:`~repro.hardware.link.BandwidthLedger.replicate_shifted`), so
  extrapolating never materializes the shifted records unless a
  consumer walks them;
* timeline spans and, when tracing, flow/collective spans are
  replicated with ``synthetic=True`` so trace consumers can tell
  simulated activity from extrapolated activity;
* ``iteration_times`` / ``total_time`` extend by ``period`` per
  iteration, which makes the throughput profiler, the host-background
  charger, the bandwidth window, and the trace builder all see the
  extrapolated run as if it had been simulated.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, List, Optional, Sequence

from ...units import Seconds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...hardware.cluster import Cluster
    from ...runtime.executor import ExecutionResult
    from ...trace.recorder import TraceRecorder

#: Post-warmup iterations simulated at full fidelity before extrapolating.
#: Two is the minimum that lets the detector compare consecutive measured
#: iterations; the second doubles as the replication template.
HYBRID_MEASURE_ITERATIONS = 2

#: Relative tolerance for the per-iteration duration deltas.  Identical
#: iterations agree to ~1e-12 relative (clock accumulation dust); real
#: perturbations (faults, stragglers) differ by >1e-3.
STEADY_STATE_RTOL = 1e-9


def hybrid_simulated_iterations(iterations: int,
                                warmup_iterations: int) -> int:
    """How many iterations the hybrid path simulates on the DES."""
    return min(iterations, warmup_iterations + HYBRID_MEASURE_ITERATIONS)


def is_steady(iteration_times: Sequence[Seconds], warmup_iterations: int,
              *, rtol: float = STEADY_STATE_RTOL) -> bool:
    """Whether the measured (post-warmup) iterations are periodic."""
    measured = list(iteration_times[warmup_iterations:])
    if len(measured) < 2:
        return False
    reference = measured[-1]
    if reference <= 0:
        return False
    return all(abs(value - reference) <= rtol * reference
               for value in measured[:-1])


def extrapolate_execution(cluster: "Cluster", result: "ExecutionResult",
                          recorder: Optional["TraceRecorder"],
                          target_iterations: int) -> int:
    """Extend ``result`` in place from its simulated iterations to
    ``target_iterations`` by replicating the last measured iteration.

    Must run *before* post-run accounting that scales with the total
    time or iteration count (host-background charging, bandwidth
    windows, trace building).  Returns the number of iterations added.
    """
    simulated = len(result.iteration_times)
    extra = target_iterations - simulated
    if extra <= 0:
        return 0
    period = result.iteration_times[-1]
    template_start = result.total_time - period
    # Records/spans at the template boundary are part of the template;
    # the epsilon only absorbs clock-accumulation dust at the boundary.
    eps = max(period, 1.0) * 1e-9

    for link in cluster.topology.links:
        template = [record for record in link.ledger
                    if record.start >= template_start - eps]
        link.ledger.replicate_shifted(template, period, extra)

    span_template = [span for span in result.timeline.spans
                     if span.start >= template_start - eps]
    for k in range(1, extra + 1):
        result.timeline.extend_shifted(span_template, k * period)

    if recorder is not None:
        _replicate_trace_spans(recorder, template_start - eps, period, extra)

    per_iteration_events = result.events_processed / max(1, simulated)
    result.iteration_times.extend([period] * extra)
    result.total_time += extra * period
    result.events_extrapolated = int(round(per_iteration_events * extra))
    result.extrapolated_iterations = extra
    return extra


def _replicate_trace_spans(recorder: "TraceRecorder", cutoff: Seconds,
                           period: Seconds, extra: int) -> None:
    """Replicate the recorder's steady-window flow/collective spans.

    Synthetic flow spans get fresh ids past the highest recorded one so
    every flow id in the final trace stays unique.
    """
    flow_template = [span for span in recorder.flows if span.start >= cutoff]
    coll_template = [span for span in recorder.collectives
                     if span.start >= cutoff]
    next_id = max((span.flow_id for span in recorder.flows), default=-1) + 1
    for k in range(1, extra + 1):
        shift = k * period
        for span in flow_template:
            recorder.flows.append(replace(
                span, flow_id=next_id, start=span.start + shift,
                end=span.end + shift, synthetic=True,
            ))
            next_id += 1
        for span in coll_template:
            recorder.collectives.append(replace(
                span, start=span.start + shift, end=span.end + shift,
                synthetic=True,
            ))
