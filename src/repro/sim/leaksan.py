"""Opt-in runtime leak sanitizer: the dynamic half of the RES family.

The static typestate passes (:mod:`repro.analysis.lifecycle`) prove
acquire/release conformance per function; this module *observes* it per
run.  A :class:`LeakSanitizer` attached to a run

* tags every :class:`~repro.hardware.devices.MemoryPool` allocation and
  free with an observer (the pools call back; nothing in the allocation
  path changes);
* shadows every flow with per-link :class:`~repro.hardware.link.
  BandwidthLedger` reservations — ``reserve`` on activation, ``settle``
  on completion — so the ledgers' outstanding balance is a live census
  of in-flight ownership (the flow-epoch and ledger-reservation
  protocols of :mod:`~repro.analysis.lifecycle.protocols`);
* at teardown, audits pools, ledgers, open flows, and undrained trace
  spans for outstanding balance.

Everything is opt-in and schedule-invariant: the observer hooks only
append to Python dicts/lists and never schedule events or touch engine
state, and ledger reservations are ownership bookkeeping, not admission
control — ``record``/``sample`` behave identically with the sanitizer
on or off, so golden traces stay byte-identical.

Finding codes (claimed here, listed in the ``RES0xx`` catalog of
:mod:`repro.analysis.lifecycle.passes`):

* ``RES007`` — outstanding pool/ledger/flow/span balance at teardown;
* ``RES008`` — runtime protocol error observed under instrumentation
  (free of an unknown label, settle of an unknown flow);
* ``RES009`` — cross-validation verdict joining a runtime leak with the
  static RES findings (:func:`cross_validate`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..analysis.findings import Finding, Severity
from ..analysis.registry import claim_codes
from ..errors import SimulationError
from ..hardware.link import BandwidthLedger, Reservation
from ..units import GB

#: Stable finding codes for runtime lifecycle diagnostics.
LEAK_CODES = ("RES007", "RES008", "RES009")

_REPORTER_NAME = "leak-sanitizer"

claim_codes(_REPORTER_NAME, LEAK_CODES)

#: Keep at most this many concrete leak records; beyond it only the
#: counters grow, so a pathological run cannot bloat the report.
MAX_RECORDED_LEAKS = 64


@dataclass(frozen=True)
class LeakRecord:
    """One observed lifecycle violation."""

    #: protocol name from the lifecycle protocol table
    protocol: str
    #: RES007 (outstanding at teardown) or RES008 (protocol error)
    code: str
    #: the pool/ledger/flow the violation is about
    resource: str
    #: what leaked or went wrong
    detail: str
    #: leaked amount in bytes where meaningful, else 0
    amount_bytes: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "protocol": self.protocol,
            "code": self.code,
            "resource": self.resource,
            "detail": self.detail,
            "amount_bytes": self.amount_bytes,
        }


@dataclass
class LeakReport:
    """Everything one leak-checked run observed."""

    records: List[LeakRecord] = field(default_factory=list)
    #: violations beyond the recording cap (counted, not materialized)
    suppressed: int = 0
    pools_audited: int = 0
    ledgers_audited: int = 0
    #: pool allocate/free pairs observed through the observer hooks
    pool_events: int = 0
    #: flows shadowed with ledger reservations
    flows_tracked: int = 0
    #: per-link reservations opened on behalf of flows
    reservations_opened: int = 0

    @property
    def clean(self) -> bool:
        return not self.records and not self.suppressed

    @property
    def leaked_bytes(self) -> float:
        return sum(r.amount_bytes for r in self.records)

    def to_dict(self) -> Dict[str, object]:
        return {
            "records": [r.to_dict() for r in self.records],
            "suppressed": self.suppressed,
            "pools_audited": self.pools_audited,
            "ledgers_audited": self.ledgers_audited,
            "pool_events": self.pool_events,
            "flows_tracked": self.flows_tracked,
            "reservations_opened": self.reservations_opened,
            "leaked_bytes": self.leaked_bytes,
            "clean": self.clean,
        }

    def assert_clean(self) -> None:
        """Raise :class:`~repro.errors.SimulationError` on any leak."""
        if self.clean:
            return
        worst = self.records[:5]
        detail = "; ".join(
            f"[{r.code}] {r.resource}: {r.detail}" for r in worst
        )
        raise SimulationError(
            f"leak sanitizer found {len(self.records)} outstanding "
            f"balance(s) at teardown ({self.leaked_bytes / GB:.3f} GB "
            f"leaked): {detail}"
        )

    def findings(self) -> List[Finding]:
        """The report as analysis findings (for reports and baselines)."""
        return [
            Finding(
                _REPORTER_NAME,
                Severity.ERROR if r.code == "RES008" else Severity.WARNING,
                r.code,
                f"{r.detail} ({r.protocol} protocol)",
                subject=r.resource,
            )
            for r in self.records
        ]


class LeakSanitizer:
    """Instrument pools/ledgers/flows with ownership tracking.

    Attach with :meth:`attach` before resources are acquired, run the
    simulation, then :meth:`finalize` after teardown released what it
    legitimately holds.  The report's :attr:`~LeakReport.clean` is the
    zero-outstanding-balance assertion.
    """

    def __init__(self) -> None:
        self.report = LeakReport()
        #: flow.id -> (ledger, reservation) per traversed link
        self._open_flows: Dict[
            int, List[Tuple[BandwidthLedger, Reservation]]] = {}
        self._flow_labels: Dict[int, str] = {}

    # -- wiring --------------------------------------------------------------
    def attach(self, cluster: Any, network: Any = None) -> None:
        """Observe every memory pool of ``cluster`` and, when a
        :class:`~repro.sim.flows.FlowNetwork` is given, its flows."""
        for pool in self._pools(cluster):
            pool.observer = self
        if network is not None:
            network.leaksan = self

    @staticmethod
    def _pools(cluster: Any) -> List[Any]:
        pools: Dict[int, Any] = {}
        for device in cluster.topology.devices:
            if device.memory is not None:
                pools.setdefault(id(device.memory), device.memory)
        return list(pools.values())

    # -- pool observer hooks (called by MemoryPool) --------------------------
    def pool_allocated(self, pool: Any, label: str,
                       num_bytes: float) -> None:
        self.report.pool_events += 1

    def pool_freed(self, pool: Any, label: str, amount: float) -> None:
        self.report.pool_events += 1

    def pool_free_missing(self, pool: Any, label: str) -> None:
        self._record(LeakRecord(
            protocol="memory-pool", code="RES008",
            resource=pool.owner or "memory pool",
            detail=f"free of unknown label {label!r} (double-free or "
                   f"never allocated)",
        ))

    # -- flow hooks (called by FlowNetwork) ----------------------------------
    def flow_opened(self, flow: Any) -> None:
        """Shadow an activating flow with one reservation per link."""
        owner = f"flow:{flow.id}" + (f":{flow.label}" if flow.label
                                     else "")
        held: List[Tuple[BandwidthLedger, Reservation]] = []
        for link in flow.route.links:
            reservation = link.ledger.reserve(flow.bytes_total,
                                              owner=owner)
            held.append((link.ledger, reservation))
            self.report.reservations_opened += 1
        self._open_flows[flow.id] = held
        self._flow_labels[flow.id] = owner
        self.report.flows_tracked += 1

    def flow_closed(self, flow: Any, now: float) -> None:
        """Settle the flow's reservations; an unknown flow is RES008."""
        held = self._open_flows.pop(flow.id, None)
        self._flow_labels.pop(flow.id, None)
        if held is None:
            self._record(LeakRecord(
                protocol="flow-epoch", code="RES008",
                resource=f"flow:{flow.id}",
                detail=f"flow {flow.id} completed at t={now:.6g} but was "
                       f"never observed activating (epoch mismatch)",
            ))
            return
        for ledger, reservation in held:
            ledger.settle(reservation)

    # -- teardown audit ------------------------------------------------------
    def finalize(self, cluster: Any, network: Any = None,
                 recorder: Any = None) -> LeakReport:
        """Audit every instrumented resource for outstanding balance.

        Call after teardown has released everything it legitimately
        holds (the memory plan's labels, settled flows); whatever is
        still outstanding is a leak.
        """
        for flow_id in sorted(self._open_flows):
            self._record(LeakRecord(
                protocol="flow-epoch", code="RES007",
                resource=self._flow_labels.get(flow_id,
                                               f"flow:{flow_id}"),
                detail=f"flow {flow_id} was still active at teardown",
            ))
        for pool in self._pools(cluster):
            self.report.pools_audited += 1
            for label, amount in sorted(pool.usage_by_label().items()):
                if amount <= 0.0:
                    continue
                self._record(LeakRecord(
                    protocol="memory-pool", code="RES007",
                    resource=pool.owner or "memory pool",
                    detail=f"label {label!r} holds "
                           f"{amount / GB:.3f} GB at teardown",
                    amount_bytes=amount,
                ))
        for link in cluster.topology.links:
            self.report.ledgers_audited += 1
            for reservation in link.ledger.open_reservations():
                self._record(LeakRecord(
                    protocol="ledger-reservation", code="RES007",
                    resource=link.name,
                    detail=f"reservation #{reservation.reservation_id} "
                           f"({reservation.owner or 'unowned'}) holds "
                           f"{reservation.num_bytes / GB:.3f} GB at "
                           f"teardown",
                    amount_bytes=reservation.num_bytes,
                ))
        if recorder is not None:
            for flow_id in recorder.open_flow_ids():
                self._record(LeakRecord(
                    protocol="trace-span", code="RES007",
                    resource=f"flow:{flow_id}",
                    detail=f"trace span for flow {flow_id} was opened "
                           f"but never closed or drained",
                ))
        if network is not None and network.active_count:
            self._record(LeakRecord(
                protocol="flow-epoch", code="RES007",
                resource="flows:allocator",
                detail=f"{network.active_count} flow(s) still registered "
                       f"active at teardown",
            ))
        return self.report

    def _record(self, record: LeakRecord) -> None:
        if len(self.report.records) >= MAX_RECORDED_LEAKS:
            self.report.suppressed += 1
            return
        self.report.records.append(record)


def cross_validate(static_findings: List[Finding],
                   report: LeakReport) -> List[Finding]:
    """Join static RES findings with the runtime leak report (RES009).

    For each protocol the runtime observed leaking, an INFO finding
    states whether the static typestate pass *corroborates* it (a
    ``RES001``/``RES002`` finding exists for the same protocol family)
    or the leak is dynamic-only (born in runtime callbacks the static
    pass does not model — the flow-epoch and trace-span protocols, or a
    path through exec/getattr).  Symmetrically, a static leak finding
    with a clean runtime protocol is reported as unconfirmed — possibly
    latent (the leaking path did not execute) or a false positive.
    """
    verdicts: List[Finding] = []
    static_leaks = [f for f in static_findings
                    if f.code in ("RES001", "RES002")]
    runtime_leaked = {r.protocol for r in report.records}
    for protocol in sorted(runtime_leaked):
        matches = [f for f in static_leaks if protocol in f.message]
        if matches:
            where = ", ".join(sorted({f.location for f in matches})[:3])
            detail = f"corroborated by static findings at {where}"
        else:
            detail = ("dynamic-only: no static RES finding names this "
                      "protocol (leak born in runtime callbacks or an "
                      "unmodelled path)")
        verdicts.append(Finding(
            _REPORTER_NAME, Severity.INFO, "RES009",
            f"runtime leak on the {protocol} protocol: {detail}",
            subject=protocol,
        ))
    for finding in static_leaks:
        protocol = next(
            (r.protocol for r in report.records
             if r.protocol in finding.message), None)
        if protocol is None and report.clean:
            verdicts.append(Finding(
                _REPORTER_NAME, Severity.INFO, "RES009",
                f"static finding {finding.code} at {finding.location} "
                f"had no runtime counterpart in this run (latent path "
                f"or false positive)",
                subject=finding.subject,
            ))
    return verdicts
