"""Dynamic schedule sanitizer: observe same-timestamp event ties.

The engine breaks ties between callbacks scheduled at the same simulated
instant only by insertion ``seq`` — an arbitrary order nothing in the
physics depends on *if the simulation is race-free*.  This module is the
dynamic half of the ``repro.analysis.determinism`` subsystem (the static
half is the ``DET0xx`` AST passes): attached to an engine, it

* records every *tie group* — two or more callbacks popped at the exact
  same timestamp, whose mutual order is decided only by ``seq``;
* flags groups in which two or more of those callbacks touched the same
  shared resource (a link's bandwidth ledger, the flow network's
  allocator state, a collective stream, the fault injector) — the
  scheduling analog of a data race: a tie whose resolution *could*
  matter;
* after the run, audits every link ledger record against the capacity
  actually in effect during its interval (``Link.max_capacity_over``),
  so no interval double-books a link.

Flagged ties are *suspects*, not verdicts: the perturbation differ
(:mod:`repro.analysis.determinism.differ`) reruns the configuration under
a reversed or seeded-permuted tie order and confirms or refutes them.

This module stays dependency-free like the engine; converting its report
into :class:`~repro.analysis.findings.Finding` objects is the analysis
layer's job (:mod:`repro.analysis.determinism.dynamic`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from .engine import Engine

#: Ledger rates may exceed the capacity-in-effect by this factor before
#: the audit flags them — covers rounding in flow splits and the coarse
#: one-record host-background charges (same tolerance the run validator
#: uses, see ``repro.core.validate``).
RATE_TOLERANCE = 1.05

#: Keep at most this many concrete conflict samples; beyond it only the
#: counters grow, so a chatty run cannot bloat the report.
MAX_RECORDED_CONFLICTS = 32


def _callback_label(callback: Callable[..., Any]) -> str:
    qualname = getattr(callback, "__qualname__", "")
    if qualname:
        return qualname
    return getattr(callback, "__name__", repr(callback))


@dataclass
class TieConflict:
    """One same-timestamp group whose members shared a resource."""

    stamp: float
    group_size: int
    resources: List[str]
    callbacks: List[str]

    def to_dict(self) -> Dict[str, object]:
        return {
            "stamp": self.stamp,
            "group_size": self.group_size,
            "resources": list(self.resources),
            "callbacks": list(self.callbacks),
        }


@dataclass
class SanitizerReport:
    """Everything one sanitized run observed."""

    events_observed: int = 0
    #: groups of >= 2 callbacks popped at one timestamp
    tie_groups: int = 0
    events_in_ties: int = 0
    #: tie groups where >= 2 members touched one shared resource
    conflict_groups: int = 0
    conflicts: List[TieConflict] = field(default_factory=list)
    capacity_violations: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.conflict_groups == 0 and not self.capacity_violations

    def to_dict(self) -> Dict[str, object]:
        return {
            "events_observed": self.events_observed,
            "tie_groups": self.tie_groups,
            "events_in_ties": self.events_in_ties,
            "conflict_groups": self.conflict_groups,
            "conflicts": [c.to_dict() for c in self.conflicts],
            "capacity_violations": list(self.capacity_violations),
            "clean": self.clean,
        }


class _CallbackRecord:
    """One popped callback and the resources it touched."""

    __slots__ = ("seq", "label", "touched")

    def __init__(self, seq: int, label: str) -> None:
        self.seq = seq
        self.label = label
        self.touched: List[str] = []  # ordered, deduped on append


class ScheduleSanitizer:
    """Attach to an :class:`~repro.sim.engine.Engine` and observe ties.

    The engine calls :meth:`begin_callback`/:meth:`end_callback` around
    every popped callback; instrumented subsystems report shared-resource
    touches through :meth:`Engine.note_touch`.  Call :meth:`finalize`
    after the run (optionally with the cluster, to audit the ledgers).
    """

    def __init__(self, engine: Engine) -> None:
        engine.sanitizer = self
        self.engine = engine
        self.report = SanitizerReport()
        self._group_stamp: Optional[float] = None
        self._group: List[_CallbackRecord] = []
        self._current: Optional[_CallbackRecord] = None

    # -- engine hooks -------------------------------------------------------
    def begin_callback(self, stamp: float, seq: int,
                       callback: Callable[..., Any]) -> None:
        if self._group_stamp is None or stamp != self._group_stamp:
            self._close_group()
            self._group_stamp = stamp
        self._current = _CallbackRecord(seq, _callback_label(callback))
        self._group.append(self._current)
        self.report.events_observed += 1

    def end_callback(self) -> None:
        self._current = None

    def touch(self, resource: str) -> None:
        current = self._current
        if current is not None and resource not in current.touched:
            current.touched.append(resource)

    # -- grouping -----------------------------------------------------------
    def _close_group(self) -> None:
        group, self._group = self._group, []
        if len(group) < 2:
            return
        self.report.tie_groups += 1
        self.report.events_in_ties += len(group)
        contested: Dict[str, int] = {}
        for record in group:
            for resource in record.touched:
                contested[resource] = contested.get(resource, 0) + 1
        shared = sorted(r for r, hits in contested.items() if hits >= 2)
        if not shared:
            return
        self.report.conflict_groups += 1
        if len(self.report.conflicts) < MAX_RECORDED_CONFLICTS:
            assert self._group_stamp is not None
            self.report.conflicts.append(TieConflict(
                stamp=self._group_stamp,
                group_size=len(group),
                resources=shared,
                callbacks=[r.label for r in group],
            ))

    # -- post-run ------------------------------------------------------------
    def audit_ledgers(self, cluster: Any) -> None:
        """Assert no ledger interval double-books a link.

        Each record's average rate must stay within the highest capacity
        in effect anywhere in its interval (time-varying under fault
        injection), with the standard rounding tolerance.
        """
        for link in cluster.topology.links:
            for record in link.ledger:
                width = record.end - record.start
                if width <= 1e-9:
                    continue
                ceiling = link.max_capacity_over(record.start, record.end)
                rate = record.num_bytes / width
                if rate > ceiling * RATE_TOLERANCE:
                    self.report.capacity_violations.append(
                        f"{link.name}: {rate:.6g} B/s over "
                        f"[{record.start:.6g}, {record.end:.6g}] exceeds "
                        f"capacity-in-effect {ceiling:.6g} B/s"
                    )

    def finalize(self, cluster: Any = None) -> SanitizerReport:
        """Close the trailing tie group and return the report."""
        self._close_group()
        self._group_stamp = None
        if cluster is not None:
            self.audit_ledgers(cluster)
        return self.report
