"""repro — a calibrated simulator reproducing "Bandwidth Characterization
of DeepSpeed on Distributed Large Language Model Training" (ISPASS 2024).

The package models the paper's two-node Dell XE8545 cluster (EPYC 7763
sockets with an explicit IOD SerDes-contention model, A100 GPUs, NVLink,
PCIe 4.0, NVMe with DRAM caches, RoCE through a Spectrum switch), runs
DDP / Megatron-LM / DeepSpeed ZeRO / ZeRO-Offload / ZeRO-Infinity
training schedules on a discrete-event engine, and measures achieved
model size, compute throughput, memory composition, and per-interconnect
bandwidth exactly as the paper does.

Quickstart::

    from repro import RunSpec, run_spec

    metrics = run_spec(RunSpec(strategy="zero2", size_billions=1.4))
    print(metrics.tflops, "TFLOP/s")

Every table and figure of the paper is reproducible through
:mod:`repro.experiments` (``run_experiment("fig7")`` etc.).
"""

import functools
import warnings

from . import calibration, errors, units
from .api import RunSpec, run_spec
from .core import (
    PAPER_SIZE_GRID,
    RunMetrics,
    SearchResult,
    fits,
    max_model_size,
    model_for_billions,
    plan_only,
)
from .core import run_training as _run_training
from .errors import (
    CapabilityError,
    ConfigurationError,
    OutOfMemoryError,
    ReproError,
    SimulationError,
    TopologyError,
)
from .model import ModelConfig, TrainingConfig, paper_model, total_parameters


@functools.wraps(_run_training)
def run_training(*args, **kwargs):
    """Deprecated top-level alias for :func:`repro.core.runner.run_training`.

    The declarative front door is :func:`repro.api.run_spec`; scripts
    that want the positional runner should import it from
    :mod:`repro.core` directly.
    """
    warnings.warn(
        "repro.run_training is deprecated; use repro.api.run_spec "
        "(declarative) or repro.core.run_training (positional) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _run_training(*args, **kwargs)


__version__ = "1.0.0"

__all__ = [
    "CapabilityError",
    "ConfigurationError",
    "ModelConfig",
    "OutOfMemoryError",
    "PAPER_SIZE_GRID",
    "ReproError",
    "RunMetrics",
    "RunSpec",
    "SearchResult",
    "SimulationError",
    "TopologyError",
    "TrainingConfig",
    "__version__",
    "calibration",
    "errors",
    "fits",
    "max_model_size",
    "model_for_billions",
    "paper_model",
    "plan_only",
    "run_spec",
    "run_training",
    "total_parameters",
    "units",
]
