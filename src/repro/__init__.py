"""repro — a calibrated simulator reproducing "Bandwidth Characterization
of DeepSpeed on Distributed Large Language Model Training" (ISPASS 2024).

The package models the paper's two-node Dell XE8545 cluster (EPYC 7763
sockets with an explicit IOD SerDes-contention model, A100 GPUs, NVLink,
PCIe 4.0, NVMe with DRAM caches, RoCE through a Spectrum switch), runs
DDP / Megatron-LM / DeepSpeed ZeRO / ZeRO-Offload / ZeRO-Infinity
training schedules on a discrete-event engine, and measures achieved
model size, compute throughput, memory composition, and per-interconnect
bandwidth exactly as the paper does.

Quickstart::

    from repro import RunSpec, run_spec

    metrics = run_spec(RunSpec(strategy="zero2", size_billions=1.4))
    print(metrics.tflops, "TFLOP/s")

Every table and figure of the paper is reproducible through
:mod:`repro.experiments` (``run_experiment("fig7")`` etc.).
"""

from . import calibration, errors, units
from .api import RunSpec, run_spec
from .core import (
    PAPER_SIZE_GRID,
    RunMetrics,
    SearchResult,
    fits,
    max_model_size,
    model_for_billions,
    plan_only,
)
from .errors import (
    CapabilityError,
    ConfigurationError,
    OutOfMemoryError,
    ReproError,
    SimulationError,
    TopologyError,
)
from .model import ModelConfig, TrainingConfig, paper_model, total_parameters


def __getattr__(name: str):
    if name == "run_training":
        # The deprecated top-level alias was removed in 1.1.0.
        raise ImportError(
            "repro.run_training was removed; use repro.run_spec(RunSpec(...))"
            " (declarative) or repro.core.run_training (positional) instead"
        )
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__version__ = "1.1.0"

__all__ = [
    "CapabilityError",
    "ConfigurationError",
    "ModelConfig",
    "OutOfMemoryError",
    "PAPER_SIZE_GRID",
    "ReproError",
    "RunMetrics",
    "RunSpec",
    "SearchResult",
    "SimulationError",
    "TopologyError",
    "TrainingConfig",
    "__version__",
    "calibration",
    "errors",
    "fits",
    "max_model_size",
    "model_for_billions",
    "paper_model",
    "plan_only",
    "run_spec",
    "total_parameters",
    "units",
]
