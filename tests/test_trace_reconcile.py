"""Trace/ledger reconciliation: TRC findings and registry ownership."""

import json

import pytest

from repro.analysis.findings import Severity
from repro.analysis.registry import code_owners, self_check
from repro.trace.model import FlowSpan, LinkAccount, Trace
from repro.trace.reconcile import (
    TRACE_RECONCILE_PASS,
    reconcile_findings,
    reconcile_report,
)


def round_tripped(trace):
    """The trace after a repr-exact JSON round trip (what files hold)."""
    return Trace.from_dict(json.loads(json.dumps(trace.to_dict())))


@pytest.fixture()
def run(traced_ddp):
    cluster, metrics = traced_ddp
    return cluster, metrics.trace


class TestCleanRun:
    def test_traced_run_reconciles_exactly(self, run):
        cluster, trace = run
        assert reconcile_findings(trace, cluster) == []

    def test_reconciles_after_json_round_trip(self, run):
        cluster, trace = run
        assert reconcile_findings(round_tripped(trace), cluster) == []

    def test_report_names_the_pass(self, run):
        cluster, trace = run
        report = reconcile_report(trace, cluster)
        assert TRACE_RECONCILE_PASS in report.passes_run
        assert report.ok

    def test_accounts_cover_every_active_link(self, run):
        cluster, trace = run
        accounted = {account.name for account in trace.links}
        for link in cluster.topology.links:
            if len(link.ledger) > 0:
                assert link.name in accounted


class TestTamperedTraces:
    def _codes(self, findings):
        return sorted({f.code for f in findings})

    def test_wrong_byte_total_raises_trc001(self, run):
        cluster, trace = run
        tampered = round_tripped(trace)
        account = tampered.links[0]
        tampered.links[0] = LinkAccount(
            account.name, account.link_class,
            account.total_bytes + 1.0, account.record_count,
            account.degraded,
        )
        assert "TRC001" in self._codes(reconcile_findings(tampered, cluster))

    def test_wrong_record_count_raises_trc001(self, run):
        cluster, trace = run
        tampered = round_tripped(trace)
        account = tampered.links[0]
        tampered.links[0] = LinkAccount(
            account.name, account.link_class,
            account.total_bytes, account.record_count + 1,
            account.degraded,
        )
        assert "TRC001" in self._codes(reconcile_findings(tampered, cluster))

    def test_dropped_account_raises_trc002(self, run):
        cluster, trace = run
        tampered = round_tripped(trace)
        dropped = tampered.links.pop(0)
        findings = reconcile_findings(tampered, cluster)
        assert "TRC002" in self._codes(findings)
        assert any(f.subject == dropped.name for f in findings)

    def test_phantom_account_raises_trc002(self, run):
        cluster, trace = run
        tampered = round_tripped(trace)
        tampered.links.append(
            LinkAccount("node9.fake-link", "nvlink", 1.0, 1)
        )
        findings = reconcile_findings(tampered, cluster)
        assert any(f.code == "TRC002"
                   and f.subject == "node9.fake-link" for f in findings)

    def test_inflated_flow_bytes_raise_trc003(self, run):
        cluster, trace = run
        tampered = round_tripped(trace)
        link_name = tampered.links[0].name
        tampered.flows.append(FlowSpan(
            10 ** 9, "bogus", "a", "b", (link_name,),
            tampered.links[0].total_bytes * 2, 0.0, 1.0,
        ))
        findings = reconcile_findings(tampered, cluster)
        assert any(f.code == "TRC003" and f.subject == link_name
                   for f in findings)

    def test_all_findings_are_errors_from_this_pass(self, run):
        cluster, trace = run
        tampered = round_tripped(trace)
        tampered.links.pop(0)
        for finding in reconcile_findings(tampered, cluster):
            assert finding.pass_name == TRACE_RECONCILE_PASS
            assert finding.severity is Severity.ERROR


class TestRegistryOwnership:
    def test_registry_self_check_passes(self):
        summary = self_check()
        assert summary["passes"] > 0

    def test_trc_codes_claimed_by_the_reconcile_pass(self):
        owners = code_owners()
        for code in ("TRC001", "TRC002", "TRC003"):
            assert owners[code] == TRACE_RECONCILE_PASS
