"""Link specs and the bandwidth ledger."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.link import (
    BandwidthLedger,
    Link,
    LinkClass,
    LinkSpec,
    SERDES_CLASSES,
)


def make_spec(**overrides):
    base = dict(link_class=LinkClass.PCIE_GPU,
                bandwidth_per_direction=32e9, latency=1e-6,
                efficiency=0.9)
    base.update(overrides)
    return LinkSpec(**base)


class TestLinkSpec:
    def test_bidirectional_duplex(self):
        spec = make_spec()
        assert spec.bandwidth_bidirectional == pytest.approx(64e9)

    def test_bidirectional_half_duplex(self):
        spec = make_spec(duplex=False)
        assert spec.bandwidth_bidirectional == pytest.approx(32e9)

    def test_attainable_applies_efficiency(self):
        spec = make_spec(efficiency=0.5)
        assert spec.attainable_per_direction == pytest.approx(16e9)

    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            make_spec(bandwidth_per_direction=0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(ConfigurationError):
            make_spec(efficiency=0.0)
        with pytest.raises(ConfigurationError):
            make_spec(efficiency=1.5)

    def test_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            make_spec(latency=-1e-9)


class TestLink:
    def test_capacity_scales_with_count(self):
        link = Link("l", make_spec(), "a", "b", count=4)
        assert link.capacity_per_direction == pytest.approx(4 * 32e9 * 0.9)

    def test_capacity_bidirectional_uses_theoretical(self):
        link = Link("l", make_spec(), "a", "b", count=2)
        assert link.capacity_bidirectional == pytest.approx(2 * 64e9)

    def test_other_end(self):
        link = Link("l", make_spec(), "a", "b")
        assert link.other_end("a") == "b"
        assert link.other_end("b") == "a"

    def test_other_end_rejects_stranger(self):
        link = Link("l", make_spec(), "a", "b")
        with pytest.raises(ConfigurationError):
            link.other_end("c")

    def test_connects(self):
        link = Link("l", make_spec(), "a", "b")
        assert link.connects("a", "b")
        assert link.connects("b", "a")
        assert not link.connects("a", "c")

    def test_rejects_zero_count(self):
        with pytest.raises(ConfigurationError):
            Link("l", make_spec(), "a", "b", count=0)


class TestSerdesClasses:
    def test_pcie_and_xgmi_are_serdes(self):
        for cls in (LinkClass.XGMI, LinkClass.PCIE_GPU,
                    LinkClass.PCIE_NVME, LinkClass.PCIE_NIC):
            assert cls in SERDES_CLASSES

    def test_nvlink_dram_roce_are_not(self):
        for cls in (LinkClass.NVLINK, LinkClass.DRAM, LinkClass.ROCE):
            assert cls not in SERDES_CLASSES


class TestBandwidthLedger:
    def test_total_bytes(self):
        ledger = BandwidthLedger()
        ledger.record(0.0, 1.0, 10e9)
        ledger.record(1.0, 2.0, 5e9)
        assert ledger.total_bytes == pytest.approx(15e9)

    def test_zero_byte_records_are_dropped(self):
        ledger = BandwidthLedger()
        ledger.record(0.0, 1.0, 0.0)
        assert len(ledger) == 0

    def test_rejects_reversed_interval(self):
        ledger = BandwidthLedger()
        with pytest.raises(ConfigurationError):
            ledger.record(2.0, 1.0, 1.0)

    def test_rejects_negative_bytes(self):
        ledger = BandwidthLedger()
        with pytest.raises(ConfigurationError):
            ledger.record(0.0, 1.0, -5.0)

    def test_utilization_at_instant(self):
        ledger = BandwidthLedger()
        ledger.record(0.0, 2.0, 20e9)  # 10 GB/s
        ledger.record(1.0, 2.0, 5e9)   # 5 GB/s
        assert ledger.utilization_at(0.5) == pytest.approx(10e9)
        assert ledger.utilization_at(1.5) == pytest.approx(15e9)
        assert ledger.utilization_at(2.5) == 0.0

    def test_sample_conserves_bytes(self):
        ledger = BandwidthLedger()
        ledger.record(0.1, 0.9, 8e9)
        samples = ledger.sample(0.0, 1.0, 10)
        bin_width = 0.1
        assert sum(s * bin_width for s in samples) == pytest.approx(8e9)

    def test_sample_uniform_rate(self):
        ledger = BandwidthLedger()
        ledger.record(0.0, 1.0, 10e9)
        samples = ledger.sample(0.0, 1.0, 4)
        for s in samples:
            assert s == pytest.approx(10e9)

    def test_sample_instantaneous_record(self):
        ledger = BandwidthLedger()
        ledger.record(0.5, 0.5, 1e9)
        samples = ledger.sample(0.0, 1.0, 10)
        assert sum(s * 0.1 for s in samples) == pytest.approx(1e9)

    def test_sample_rejects_bad_window(self):
        ledger = BandwidthLedger()
        with pytest.raises(ConfigurationError):
            ledger.sample(1.0, 1.0, 10)
        with pytest.raises(ConfigurationError):
            ledger.sample(0.0, 1.0, 0)

    def test_clear(self):
        ledger = BandwidthLedger()
        ledger.record(0.0, 1.0, 1e9)
        ledger.clear()
        assert len(ledger) == 0
        assert ledger.total_bytes == 0.0

    def test_sample_outside_window_is_zero(self):
        ledger = BandwidthLedger()
        ledger.record(10.0, 11.0, 1e9)
        samples = ledger.sample(0.0, 1.0, 5)
        assert all(s == 0.0 for s in samples)
