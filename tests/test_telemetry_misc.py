"""FLOPS profiler, memory snapshots, and report rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import single_node_cluster
from repro.model import TrainingConfig, paper_model
from repro.telemetry.flops_profiler import FlopsProfiler
from repro.telemetry.memory import snapshot
from repro.telemetry.report import (
    BANDWIDTH_HEADERS,
    format_table,
    series_block,
    sparkline,
)


class TestFlopsProfiler:
    def make(self, warmup=0):
        return FlopsProfiler(paper_model(26), TrainingConfig(), 4,
                             warmup_iterations=warmup)

    def test_throughput_matches_hand_math(self):
        profiler = self.make()
        profiler.record_iteration(0.5)
        report = profiler.report()
        assert report.tflops == pytest.approx(
            report.flops_per_iteration / 0.5 / 1e12)

    def test_warmup_discarded(self):
        profiler = self.make(warmup=2)
        for t in (9.0, 9.0, 1.0, 1.0):
            profiler.record_iteration(t)
        report = profiler.report()
        assert report.mean_iteration_time == pytest.approx(1.0)

    def test_no_measurements_raises(self):
        profiler = self.make(warmup=1)
        profiler.record_iteration(1.0)
        with pytest.raises(ConfigurationError):
            profiler.report()

    def test_jitter(self):
        profiler = self.make()
        for t in (1.0, 1.0, 1.0):
            profiler.record_iteration(t)
        assert profiler.report().jitter == pytest.approx(0.0)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            FlopsProfiler(paper_model(1), TrainingConfig(), 0)
        profiler = self.make()
        with pytest.raises(ConfigurationError):
            profiler.record_iteration(0.0)


class TestMemorySnapshot:
    def test_snapshot_by_tier_and_label(self):
        cluster = single_node_cluster()
        cluster.reset()
        cluster.gpu(0).memory.allocate("parameters", 10e9)
        cluster.dram_for_rank(0).memory.allocate("optimizer_states", 20e9)
        cluster.nodes[0].nvme_drives[1].memory.allocate("swap", 5e9)
        report = snapshot(cluster)
        assert report.gpu_used == pytest.approx(10e9)
        assert report.cpu_used == pytest.approx(20e9)
        assert report.nvme_used == pytest.approx(5e9)
        assert report.gpu_by_label["parameters"] == pytest.approx(10e9)
        assert report.total_used == pytest.approx(35e9)
        cluster.reset()

    def test_composition_sums_to_one(self):
        cluster = single_node_cluster()
        cluster.reset()
        cluster.gpu(0).memory.allocate("x", 1e9)
        comp = snapshot(cluster).composition()
        assert sum(comp.values()) == pytest.approx(1.0)
        cluster.reset()

    def test_empty_composition(self):
        cluster = single_node_cluster()
        cluster.reset()
        comp = snapshot(cluster).composition()
        assert comp == {"gpu": 0.0, "cpu": 0.0, "nvme": 0.0}


class TestReport:
    def test_format_table_aligns_columns(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 33.33]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "|" in lines[1]
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1  # all rows equal width

    def test_sparkline_peak_uses_top_glyph(self):
        line = sparkline([0.0, 0.5, 1.0], width=3)
        assert line[-1] == "@"
        assert line[0] == " "

    def test_sparkline_downsamples(self):
        line = sparkline(list(range(1000)), width=10)
        assert len(line) == 10

    def test_sparkline_empty(self):
        assert sparkline([]) == ""

    def test_series_block_annotates_stats(self):
        block = series_block("NVLink", [1e9, 3e9])
        assert "avg" in block and "peak" in block and "NVLink" in block

    def test_bandwidth_headers_cover_seven_classes(self):
        assert len(BANDWIDTH_HEADERS) == 7 * 3
