"""Fast-path memoization is semantics-free (satellite of the DES fast
path): cached and uncached collective cost evaluations are byte-identical
across strategies, payload sizes, algorithms, and degraded fabrics, and
the memo key separates everything it must separate.
"""

import random

import pytest

from repro.collectives import CollectiveKind, CollectiveOp, NcclCommunicator
from repro.collectives.algorithms import Algorithm
from repro.hardware import dual_node_cluster, single_node_cluster
from repro.sim.engine import Engine
from repro.sim.fastpath import COST_CACHE, CollectiveCostCache, collective_cost_key
from repro.sim.flows import FlowNetwork


def make_comm(cluster, ranks, **kwargs):
    engine = Engine()
    network = FlowNetwork(engine)
    return NcclCommunicator(cluster, engine, network, ranks, **kwargs)


@pytest.fixture(autouse=True)
def fresh_cost_cache():
    """Isolate every test from the process-wide memo's prior contents."""
    COST_CACHE.clear()
    COST_CACHE.enabled = True
    yield
    COST_CACHE.clear()
    COST_CACHE.enabled = True


class TestCostCache:
    def test_lookup_computes_once(self):
        cache = CollectiveCostCache()
        calls = []

        def compute():
            calls.append(1)
            return 42.0

        key = ("k",)
        assert cache.lookup(key, compute) == 42.0
        assert cache.lookup(key, compute) == 42.0
        assert calls == [1]
        assert cache.hits == 1 and cache.misses == 1

    def test_disabled_cache_always_computes(self):
        cache = CollectiveCostCache()
        cache.enabled = False
        calls = []
        key = ("k",)
        for _ in range(3):
            cache.lookup(key, lambda: calls.append(1) or 7.0)
        assert len(calls) == 3
        assert len(cache) == 0

    def test_maxsize_bounds_storage(self):
        cache = CollectiveCostCache(maxsize=2)
        for i in range(5):
            cache.lookup(("k", i), lambda i=i: float(i))
        assert len(cache) == 2
        # Overflow entries still compute correctly, just un-stored.
        assert cache.lookup(("k", 4), lambda: 4.0) == 4.0

    def test_clear_resets_counters(self):
        cache = CollectiveCostCache()
        cache.lookup(("k",), lambda: 1.0)
        cache.lookup(("k",), lambda: 1.0)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 0}


class TestMemoKey:
    BASE = dict(
        kind="all_reduce", payload_bytes=1e6, participants=(0, 1, 2, 3),
        algorithm="auto", profile="bursty",
        internode_launch_overhead=2.5e-3,
        intranode_launch_overhead=25e-6,
        internode_rate_efficiency=0.55,
        topology_fingerprint="f" * 64, degradation_stamp=(),
    )

    def test_identical_inputs_identical_key(self):
        assert (collective_cost_key(**self.BASE)
                == collective_cost_key(**self.BASE))

    @pytest.mark.parametrize("field,value", [
        ("kind", "all_gather"),
        ("payload_bytes", 2e6),
        ("participants", (0, 1, 4, 5)),
        ("algorithm", "tree"),
        ("profile", "sustained"),
        ("internode_launch_overhead", 1e-3),
        ("intranode_launch_overhead", 50e-6),
        ("internode_rate_efficiency", 0.8),
        ("topology_fingerprint", "0" * 64),
        ("degradation_stamp", (("roce0", 0.5),)),
    ])
    def test_every_component_separates_keys(self, field, value):
        changed = dict(self.BASE)
        changed[field] = value
        assert (collective_cost_key(**changed)
                != collective_cost_key(**self.BASE))


class TestTopologyIdentity:
    def test_same_preset_same_fingerprint(self):
        assert (single_node_cluster().topology.fingerprint()
                == single_node_cluster().topology.fingerprint())

    def test_presets_differ(self):
        assert (single_node_cluster().topology.fingerprint()
                != dual_node_cluster().topology.fingerprint())

    def test_degradation_changes_stamp_not_fingerprint(self):
        cluster = dual_node_cluster()
        topology = cluster.topology
        healthy_fp = topology.fingerprint()
        assert topology.degradation_stamp() == ()
        link = topology.links[0]
        link.set_capacity_fraction(0.5)
        assert topology.fingerprint() == healthy_fp
        assert topology.degradation_stamp() == ((link.name, 0.5),)
        link.set_capacity_fraction(1.0)
        assert topology.degradation_stamp() == ()


def _estimate_grid(comm, seed):
    """Deterministic (kind, payload, algorithm) grid of estimates."""
    rng = random.Random(seed)
    sizes = [rng.uniform(1e3, 4e9) for _ in range(6)]
    out = []
    for kind in (CollectiveKind.ALL_REDUCE, CollectiveKind.ALL_GATHER,
                 CollectiveKind.REDUCE_SCATTER, CollectiveKind.BROADCAST):
        for payload in sizes:
            for algorithm in (Algorithm.AUTO, Algorithm.RING, Algorithm.TREE):
                op = CollectiveOp(kind, payload, comm.size)
                out.append(comm.estimate(op, algorithm=algorithm))
    return out


class TestMemoizationIsSemanticsFree:
    @pytest.mark.parametrize("cluster_factory,ranks", [
        (single_node_cluster, [0, 1, 2, 3]),
        (dual_node_cluster, [0, 1, 2, 3, 4, 5, 6, 7]),
        (dual_node_cluster, [0, 4]),
    ])
    @pytest.mark.parametrize("seed", [11, 23])
    def test_cached_equals_uncached_byte_identical(self, cluster_factory,
                                                   ranks, seed):
        comm = make_comm(cluster_factory(), ranks)
        COST_CACHE.enabled = False
        uncached = _estimate_grid(comm, seed)
        COST_CACHE.enabled = True
        cold = _estimate_grid(comm, seed)   # populates the memo
        warm = _estimate_grid(comm, seed)   # served from the memo
        assert cold == uncached             # exact float equality
        assert warm == uncached
        assert COST_CACHE.hits > 0

    def test_degraded_fabric_not_served_stale(self):
        cluster = dual_node_cluster()
        comm = make_comm(cluster, [0, 1, 4, 5])
        op = CollectiveOp(CollectiveKind.ALL_REDUCE, 1e9, comm.size)
        healthy = comm.estimate(op)
        # Degrade a RoCE link the ring crosses: the stamp changes, so the
        # memo may not serve the healthy-fabric cost.
        roce = next(link for link in comm._ring_links
                    if "roce" in link.name.lower() or "RoCE" in str(link.link_class))
        roce.set_capacity_fraction(0.25)
        COST_CACHE.enabled = False
        degraded_uncached = comm.estimate(op)
        COST_CACHE.enabled = True
        degraded_cached = comm.estimate(op)
        assert degraded_cached == degraded_uncached
        assert degraded_cached != healthy
        # Reverting restores the empty stamp: the healthy entry is
        # re-validated and must serve the original value exactly.
        roce.set_capacity_fraction(1.0)
        hits_before = COST_CACHE.hits
        assert comm.estimate(op) == healthy
        assert COST_CACHE.hits == hits_before + 1

    def test_distinct_communicators_share_entries(self):
        """Two communicators over identical presets hit each other's
        entries — the point of keying on the fabric fingerprint rather
        than object identity."""
        op_size = 64e6
        comm_a = make_comm(single_node_cluster(), [0, 1, 2, 3])
        op = CollectiveOp(CollectiveKind.ALL_REDUCE, op_size, comm_a.size)
        first = comm_a.estimate(op)
        misses = COST_CACHE.misses
        comm_b = make_comm(single_node_cluster(), [0, 1, 2, 3])
        assert comm_b.estimate(op) == first
        assert COST_CACHE.misses == misses  # pure hit
