"""Topology rendering and result serialization."""

import json

import pytest

from repro.core.results import (
    SCHEMA_VERSION,
    compare_runs,
    load_metrics_dict,
    metrics_to_dict,
    save_metrics,
)
from repro.core.runner import run_training
from repro.core.search import model_for_billions
from repro.errors import ConfigurationError
from repro.hardware import dual_node_cluster, single_node_cluster
from repro.hardware.render import render_cluster, render_node
from repro.parallel import zero2


@pytest.fixture(scope="module")
def metrics():
    cluster = single_node_cluster()
    return run_training(cluster, zero2(), model_for_billions(0.7),
                        iterations=2)


class TestRender:
    def test_node_render_mentions_all_components(self):
        cluster = single_node_cluster()
        out = render_node(cluster.nodes[0])
        for token in ("cpu0", "cpu1", "gpu0", "gpu3", "nic0", "nvme0",
                      "NVLink", "xGMI", "DRAM"):
            assert token in out

    def test_cluster_render_includes_switch(self):
        out = render_cluster(dual_node_cluster())
        assert "switch0" in out
        assert "node0" in out and "node1" in out
        assert "8 GPUs" in out

    def test_single_node_render_has_no_switch(self):
        out = render_cluster(single_node_cluster())
        assert "switch0" not in out


class TestSerialization:
    def test_round_trip(self, metrics, tmp_path):
        path = save_metrics(metrics, tmp_path / "run.json")
        payload = load_metrics_dict(path)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["strategy"] == "zero2"
        assert payload["tflops"] == pytest.approx(metrics.tflops)
        assert payload["memory_bytes"]["gpu"] > 0
        assert "NVLink" in payload["bandwidth_gbps"]

    def test_dict_is_json_safe(self, metrics):
        json.dumps(metrics_to_dict(metrics))  # must not raise

    def test_wrong_schema_rejected(self, metrics, tmp_path):
        path = tmp_path / "bad.json"
        payload = metrics_to_dict(metrics)
        payload["schema_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError):
            load_metrics_dict(path)

    def test_compare_runs(self):
        runs = [{"tflops": 100.0, "strategy": "a"},
                {"tflops": 300.0, "strategy": "b"},
                {"tflops": 200.0, "strategy": "c"}]
        ranked = compare_runs(runs)
        assert [r["strategy"] for r in ranked] == ["b", "c", "a"]

    def test_compare_runs_missing_metric(self):
        with pytest.raises(ConfigurationError):
            compare_runs([{"strategy": "a"}])
