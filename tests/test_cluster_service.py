"""The cluster service end to end: scheduling, preemption, ledgers."""

import pytest

from repro.cluster import ClusterScenario, run_cluster
from repro.core.results import SCHEMA_VERSION
from repro.errors import ConfigurationError


def _trace_scenario(*jobs, **kwargs):
    return ClusterScenario(arrivals="trace", trace_jobs=tuple(jobs),
                           **kwargs)


class TestSmoke:
    @pytest.mark.parametrize("policy", ["fifo", "sjf", "memory-aware"])
    def test_policy_completes_all_jobs_leak_clean(self, policy):
        scenario = ClusterScenario(policy=policy, num_jobs=6,
                                   rate_per_hour=6000.0, leak_check=True)
        report = run_cluster(scenario).report
        assert report.jobs_submitted == 6
        assert report.jobs_completed == 6
        assert report.jobs_failed == 0
        assert report.leaks is not None and report.leaks.clean
        assert report.leaks.leaked_bytes == 0
        assert report.goodput_jobs_per_hour > 0

    def test_report_payload_schema(self):
        payload = run_cluster(ClusterScenario(num_jobs=3)).report.to_dict()
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["kind"] == "cluster"
        for key in ("goodput_jobs_per_hour", "queue_wait_p50_s",
                    "queue_wait_p99_s", "preemptions", "tenants",
                    "max_in_system_jobs", "cluster_utilization"):
            assert key in payload
        for account in payload["tenants"].values():
            assert "utilization" in account

    def test_jobs_overlap_on_the_shared_engine(self):
        # Two 2-GPU jobs on one 4-GPU node arriving together must run
        # concurrently, not serially.
        solo = _trace_scenario({"time": 0.0, "gpus": 2, "strategy": "ddp",
                                "size_billions": 0.35}, nodes=1)
        pair = _trace_scenario(
            {"time": 0.0, "gpus": 2, "strategy": "ddp",
             "size_billions": 0.35},
            {"time": 0.0, "name": "b", "gpus": 2, "strategy": "ddp",
             "size_billions": 0.35},
            nodes=1,
        )
        solo_time = run_cluster(solo).report.total_time_s
        pair_report = run_cluster(pair).report
        assert pair_report.max_concurrent_jobs == 2
        # far cheaper than running twice serially (allow contention slack)
        assert pair_report.total_time_s < 1.8 * solo_time

    def test_queueing_when_fabric_is_full(self):
        # Three whole-node jobs on one node: strictly serial, waits grow.
        jobs = [{"time": 0.0, "name": f"j{i}", "gpus": 4,
                 "strategy": "ddp", "size_billions": 0.35}
                for i in range(3)]
        report = run_cluster(_trace_scenario(*jobs, nodes=1)).report
        assert report.max_concurrent_jobs == 1
        assert report.queue_wait_p99_s > 0


class TestValidation:
    def test_impossible_shape_rejected_up_front(self):
        scenario = _trace_scenario({"time": 0.0, "gpus": 5}, nodes=2)
        with pytest.raises(ConfigurationError, match="whole nodes"):
            run_cluster(scenario)

    def test_job_larger_than_fabric_rejected(self):
        scenario = _trace_scenario({"time": 0.0, "gpus": 16}, nodes=2)
        with pytest.raises(ConfigurationError, match="nodes"):
            run_cluster(scenario)

    def test_job_that_can_never_fit_memory_rejected(self):
        scenario = _trace_scenario(
            {"time": 0.0, "gpus": 2, "strategy": "ddp",
             "size_billions": 8.0})
        with pytest.raises(ConfigurationError, match="never fit"):
            run_cluster(scenario)


class TestPreemption:
    def _run(self, **kwargs):
        scenario = _trace_scenario(
            {"time": 0.0, "name": "longlow", "strategy": "zero2",
             "size_billions": 0.7, "gpus": 16, "iterations": 40,
             "priority": 0},
            {"time": 0.5, "name": "hipri", "strategy": "ddp",
             "size_billions": 0.35, "gpus": 4, "iterations": 3,
             "priority": 5},
            leak_check=True, **kwargs,
        )
        return run_cluster(scenario).report

    def test_high_priority_arrival_preempts(self):
        report = self._run()
        assert report.preemptions == 1
        assert report.jobs_completed == 2
        assert report.leaks is not None and report.leaks.clean

    def test_checkpoint_cost_charged_to_preempted_tenant(self):
        report = self._run()
        # longlow is the "default" tenant; it pays save + restore
        account = report.tenants["default"]
        assert account["preemptions"] == 1
        assert account["checkpoint_overhead_s"] > 0
        assert report.checkpoint_overhead_s == pytest.approx(
            account["checkpoint_overhead_s"])

    def test_preempted_job_resumes_and_finishes(self):
        report = self._run()
        assert report.jobs_failed == 0
        # the preempted job restarted: max concurrency stayed 1 (16-GPU
        # job owns the fabric alone) yet both completed
        assert report.jobs_completed == 2

    def test_aging_never_grants_preemption_rights(self):
        # Low-pri waiter ages above the running job's effective priority
        # but must NOT evict it: preemption keys on base priority.
        scenario = _trace_scenario(
            {"time": 0.0, "name": "running", "strategy": "zero2",
             "size_billions": 0.7, "gpus": 16, "iterations": 24,
             "priority": 1},
            {"time": 0.1, "name": "aged", "strategy": "ddp",
             "size_billions": 0.35, "gpus": 4, "iterations": 3,
             "priority": 0},
            aging_rate=1000.0,
        )
        report = run_cluster(scenario).report
        assert report.preemptions == 0
        assert report.jobs_completed == 2


class TestHeavyTraffic:
    def test_heavy_traffic_acceptance(self):
        # >= 20 jobs concurrently in the system on a 4-node fabric,
        # every ledger byte-conserving at the end.
        scenario = ClusterScenario(
            name="heavy-traffic", policy="memory-aware", mix="heavy",
            rate_per_hour=60000.0, num_jobs=28, arrival_seed=7,
            aging_rate=0.01, leak_check=True,
        )
        report = run_cluster(scenario).report
        assert report.max_in_system_jobs >= 20
        assert report.nodes == 4
        assert report.jobs_completed == 28
        assert report.leaks is not None
        assert report.leaks.clean
        assert report.leaks.leaked_bytes == 0
        assert report.preemptions > 0  # priorities actually bit


class TestFidelity:
    def _one_job(self, fidelity):
        scenario = _trace_scenario(
            {"time": 0.0, "strategy": "ddp", "size_billions": 0.35,
             "gpus": 2, "iterations": 50, "fidelity": fidelity},
            leak_check=True,
        )
        return run_cluster(scenario).report

    def test_hybrid_job_cuts_events_and_stays_leak_clean(self):
        full = self._one_job("full")
        hybrid = self._one_job("hybrid")
        assert hybrid.jobs_completed == 1
        assert hybrid.leaks is not None and hybrid.leaks.clean
        assert hybrid.events_processed < full.events_processed / 4

    def test_hybrid_preserves_makespan_roughly(self):
        full = self._one_job("full")
        hybrid = self._one_job("hybrid")
        assert hybrid.total_time_s == pytest.approx(
            full.total_time_s, rel=0.05)


class TestClusterTrace:
    def test_trace_assembles_job_tagged_activity(self):
        scenario = _trace_scenario(
            {"time": 0.0, "name": "a", "strategy": "ddp",
             "size_billions": 0.35, "gpus": 2},
            {"time": 0.0, "name": "b", "strategy": "ddp",
             "size_billions": 0.35, "gpus": 2},
            trace=True,
        )
        run = run_cluster(scenario)
        trace = run.trace
        assert trace is not None
        assert trace.meta["jobs"] == 2
        # spans and collectives carry the owning job's id
        span_jobs = {span.name.split(":", 1)[0] for span in trace.spans}
        assert span_jobs == {"job0", "job1"}
        coll_jobs = {c.comm.split(":", 1)[0] for c in trace.collectives}
        assert coll_jobs == {"job0", "job1"}
        # flows carry the flow_tag prefix
        flow_jobs = {f.label.split("/", 1)[0] for f in trace.flows}
        assert flow_jobs == {"job0", "job1"}
        assert trace.links  # shared ledgers produced link accounts

    def test_span_ranks_are_global(self):
        # job1 lands on node 0 GPUs 2-3 (best-fit after job0 takes 0-1),
        # so its spans must sit on global ranks 2 and 3.
        scenario = _trace_scenario(
            {"time": 0.0, "name": "a", "strategy": "ddp",
             "size_billions": 0.35, "gpus": 2},
            {"time": 0.0, "name": "b", "strategy": "ddp",
             "size_billions": 0.35, "gpus": 2},
            trace=True, nodes=1,
        )
        trace = run_cluster(scenario).trace
        ranks_b = {span.rank for span in trace.spans
                   if span.name.startswith("job1:")}
        assert ranks_b == {2, 3}
