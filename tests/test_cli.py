"""Command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--strategy", "ddp"])
        assert args.command == "run"
        args = parser.parse_args(["search", "--nodes", "2"])
        assert args.command == "search"
        args = parser.parse_args(["experiment", "fig1"])
        assert args.id == "fig1"
        args = parser.parse_args(["trace", "diff", "a.json", "b.json"])
        assert args.command == "trace"
        assert args.trace_command == "diff"

    def test_trace_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_unknown_strategy_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["run", "--strategy", "nope"])

    def test_unknown_experiment_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["experiment", "fig99"])


class TestRun:
    def test_json_output(self, capsys):
        code = main(["run", "--strategy", "zero2", "--size", "0.7",
                     "--iterations", "2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["strategy"] == "zero2"
        assert payload["tflops"] > 0
        assert payload["memory_bytes"]["gpu"] > 0
        # The machine-readable schema matches save_metrics exactly.
        from repro.core.results import SCHEMA_VERSION

        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["spec"]["strategy"] == "zero2"

    def test_table_output(self, capsys):
        code = main(["run", "--strategy", "ddp", "--size", "0.7",
                     "--iterations", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "TFLOP/s" in out
        assert "NVLink" in out

    def test_oversized_model_reports_error(self, capsys):
        code = main(["run", "--strategy", "ddp", "--size", "30",
                     "--iterations", "2"])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestCluster:
    def test_json_output(self, capsys):
        code = main(["cluster", "run", "--jobs", "3",
                     "--rate-per-hour", "12000", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "cluster"
        assert payload["jobs_completed"] == 3
        assert payload["policy"] == "fifo"

    def test_table_output_with_leak_check(self, capsys):
        code = main(["cluster", "run", "--jobs", "2", "--policy", "sjf",
                     "--rate-per-hour", "12000", "--leak-check"])
        assert code == 0
        captured = capsys.readouterr()
        assert "goodput" in captured.out
        assert "leak sanitizer: clean" in captured.err

    def test_trace_driven_arrivals_and_export(self, tmp_path, capsys):
        arrivals = tmp_path / "arrivals.json"
        arrivals.write_text(json.dumps([
            {"time": 0.0, "name": "a", "strategy": "ddp",
             "size_billions": 0.35, "gpus": 2},
            {"time": 0.5, "name": "b", "strategy": "ddp",
             "size_billions": 0.35, "gpus": 2},
        ]))
        out = tmp_path / "cluster-trace.json"
        code = main(["cluster", "run", "--arrivals", str(arrivals),
                     "--trace", str(out), "--json"])
        assert code == 0
        captured = capsys.readouterr()
        assert "cluster trace written" in captured.err
        payload = json.loads(captured.out)
        assert payload["jobs_completed"] == 2
        assert out.exists()


class TestTrace:
    @pytest.fixture()
    def trace_file(self, tmp_path, capsys):
        path = tmp_path / "ddp.json"
        code = main(["run", "--strategy", "ddp", "--size", "0.7",
                     "--iterations", "2", "--json",
                     "--trace", str(path)])
        assert code == 0
        captured = capsys.readouterr()
        assert "trace written" in captured.err
        # --trace must not disturb the normal output contract.
        assert json.loads(captured.out)["tflops"] > 0
        return path

    def test_run_trace_writes_a_valid_chrome_trace(self, trace_file):
        from repro.trace import validate_chrome_trace

        doc = json.loads(trace_file.read_text())
        assert validate_chrome_trace(doc) == []
        assert doc["repro"]["meta"]["strategy"] == "ddp"

    def test_trace_check_accepts_the_export(self, trace_file, capsys):
        assert main(["trace", "check", str(trace_file)]) == 0
        assert "valid" in capsys.readouterr().out

    def test_trace_check_rejects_corruption(self, trace_file, tmp_path,
                                            capsys):
        doc = json.loads(trace_file.read_text())
        doc["traceEvents"][0]["ph"] = "Q"
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(doc))
        assert main(["trace", "check", str(bad)]) == 1
        assert "phase" in capsys.readouterr().err

    def test_trace_summary_prints_flat_table(self, trace_file, capsys):
        assert main(["trace", "summary", str(trace_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans/count"] > 0
        assert any(key.startswith("links/") for key in payload)

    def test_trace_self_diff_is_clean(self, trace_file, capsys):
        code = main(["trace", "diff", str(trace_file), str(trace_file)])
        assert code == 0
        assert "traces match" in capsys.readouterr().out

    def test_trace_diff_detects_divergence(self, trace_file, tmp_path,
                                           capsys):
        doc = json.loads(trace_file.read_text())
        doc["repro"]["links"][0]["bytes"] *= 2
        other = tmp_path / "other.json"
        other.write_text(json.dumps(doc))
        code = main(["trace", "diff", str(trace_file), str(other)])
        assert code == 1
        assert "~ links/" in capsys.readouterr().out


class TestTopology:
    def test_ascii_render(self, capsys):
        assert main(["topology", "--nodes", "2"]) == 0
        out = capsys.readouterr().out
        assert "NVLink mesh" in out

    def test_json_render(self, capsys):
        assert main(["topology", "--nodes", "2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["num_nodes"] == 2
        assert payload["summary"]["num_gpus"] == 8
        assert len(payload["nodes"]) == 2
        names = {link["name"] for link in payload["links"]}
        assert any("nvlink" in name for name in names)
        for link in payload["links"]:
            assert link["bandwidth_per_direction_bytes_per_s"] > 0


class TestSearch:
    def test_search_json(self, capsys):
        code = main(["search", "--strategy", "ddp", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["max_billions"] == pytest.approx(1.57, rel=0.05)

    def test_search_nvme_strategy_builds_placement_cluster(self, capsys):
        code = main(["search", "--strategy", "zero3_opt_nvme",
                     "--placement", "B", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["max_billions"] > 10


class TestAnalyze:
    def test_clean_preset_exits_zero(self, capsys):
        code = main(["analyze", "--strategy", "zero2", "--size", "1.4"])
        assert code == 0
        assert "0 errors" in capsys.readouterr().out

    def test_broken_tensor_parallel_exits_nonzero(self, capsys):
        code = main(["analyze", "--tensor-parallel", "3", "--nodes", "2"])
        assert code == 1
        assert "CFG002" in capsys.readouterr().out

    def test_over_capacity_offload_exits_nonzero(self, capsys):
        code = main(["analyze", "--strategy", "zero1_opt_cpu",
                     "--size", "60"])
        assert code == 1
        out = capsys.readouterr().out
        assert "CFG031" in out  # DRAM cannot hold the optimizer mirror

    def test_json_output(self, capsys):
        code = main(["analyze", "--strategy", "zero3", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert "zero-partition-accounting" in payload["passes_run"]

    def test_self_lint_is_clean(self, capsys):
        code = main(["analyze", "--self"])
        assert code == 0
        assert "0 errors" in capsys.readouterr().out

    def test_self_lint_fail_on_warning_needs_the_baseline(self, capsys):
        # The accepted DET001 advisory on sim/flows.py fails the strict
        # threshold without the committed baseline, and passes with it.
        assert main(["analyze", "--self", "--fail-on", "warning"]) == 1
        capsys.readouterr()
        code = main(["analyze", "--self", "--fail-on", "warning",
                     "--baseline", "analysis-baseline.json"])
        assert code == 0
        assert "0 errors" in capsys.readouterr().out

    def test_stale_baseline_entry_reported_on_stderr(self, tmp_path, capsys):
        stale = tmp_path / "baseline.json"
        stale.write_text(json.dumps({
            "version": 1,
            "accepted": [{"code": "DET030", "file": "gone/nowhere.py"}],
        }))
        code = main(["analyze", "--self", "--baseline", str(stale)])
        assert code == 0
        assert "stale" in capsys.readouterr().err.lower()

    def test_update_baseline_round_trips(self, tmp_path, capsys):
        path = tmp_path / "baseline.json"
        code = main(["analyze", "--self", "--update-baseline",
                     "--baseline", str(path)])
        assert code == 0
        capsys.readouterr()
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert any(e["code"] == "DET001" for e in payload["accepted"])
        code = main(["analyze", "--self", "--fail-on", "warning",
                     "--baseline", str(path)])
        assert code == 0

    def test_update_baseline_requires_baseline_path(self, capsys):
        code = main(["analyze", "--self", "--update-baseline"])
        assert code == 2
        assert "--baseline" in capsys.readouterr().err

    def test_self_and_sanitize_are_mutually_exclusive(self, capsys):
        code = main(["analyze", "--self", "--sanitize"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_dims_and_self_are_mutually_exclusive(self, capsys):
        code = main(["analyze", "--dims", "--self"])
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_dims_tree_is_clean_with_baseline(self, capsys):
        code = main(["analyze", "--dims", "--fail-on", "warning",
                     "--baseline", "analysis-baseline.json"])
        assert code == 0
        captured = capsys.readouterr()
        assert "0 errors" in captured.out

    def test_dims_skips_stale_notes_for_other_families(self, tmp_path,
                                                       capsys):
        # The committed DET001 entry belongs to a pass --dims does not
        # run, so a dims-only invocation must not call it stale.
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "accepted": [{"code": "DET001", "file": "sim/flows.py"}],
        }))
        code = main(["analyze", "--dims", "--baseline", str(baseline)])
        assert code == 0
        assert "stale" not in capsys.readouterr().err.lower()

    def test_dims_json_reports_both_passes(self, capsys):
        code = main(["analyze", "--dims", "--json",
                     "--baseline", "analysis-baseline.json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload["passes_run"]) == {"dim-flow", "dim-vocabulary"}

    def test_sanitize_smoke_single_node(self, capsys):
        code = main(["analyze", "--sanitize", "--strategy", "ddp",
                     "--size", "0.7", "--nodes", "1",
                     "--iterations", "2", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        diff = payload["perturbation_diff"]
        assert diff["races_confirmed"] is False
        assert diff["diffs"] == []
        assert diff["sanitizer"]["capacity_violations"] == []


class TestExperiment:
    def test_experiment_prints_table(self, capsys):
        code = main(["experiment", "table1"])
        assert code == 0
        assert "ZeRO stage" in capsys.readouterr().out

    def test_experiment_json_rows(self, capsys):
        code = main(["experiment", "fig1", "--json"])
        assert code == 0
        out = capsys.readouterr().out
        assert '"series"' in out
