"""Max-model-size search."""

import pytest

from repro.core.search import (
    PAPER_SIZE_GRID,
    fits,
    max_model_size,
    max_model_size_on_grid,
    model_for_billions,
    snap_to_grid,
)
from repro.errors import OutOfMemoryError
from repro.hardware import single_node_cluster
from repro.model import paper_model, total_parameters
from repro.parallel import DdpStrategy, zero3
from repro.model.config import TrainingConfig


@pytest.fixture()
def cluster():
    c = single_node_cluster()
    c.reset()
    return c


class TestFits:
    def test_small_model_fits(self, cluster):
        assert fits(cluster, DdpStrategy(), paper_model(4))

    def test_huge_model_does_not(self, cluster):
        assert not fits(cluster, DdpStrategy(), paper_model(200))


class TestSearch:
    def test_result_is_exact_boundary(self, cluster):
        result = max_model_size(cluster, DdpStrategy())
        assert fits(cluster, DdpStrategy(), paper_model(result.max_layers))
        assert not fits(cluster, DdpStrategy(),
                        paper_model(result.max_layers + 1))

    def test_parameters_match_layers(self, cluster):
        result = max_model_size(cluster, DdpStrategy())
        assert result.max_parameters == total_parameters(
            paper_model(result.max_layers))

    def test_zero3_fits_more_than_ddp(self, cluster):
        ddp = max_model_size(cluster, DdpStrategy())
        z3 = max_model_size(cluster, zero3())
        assert z3.max_parameters > 3 * ddp.max_parameters

    def test_max_layers_cap_respected(self, cluster):
        result = max_model_size(cluster, zero3(), max_layers=10)
        assert result.max_layers <= 10

    def test_impossible_configuration_raises(self, cluster):
        class Impossible(DdpStrategy):
            def memory_plan(self, ctx):
                plan = super().memory_plan(ctx)
                plan.add_gpu("hog", 1e15)
                return plan

        with pytest.raises(OutOfMemoryError):
            max_model_size(cluster, Impossible())


class TestGrid:
    def test_snap_rounds_down(self):
        assert snap_to_grid(int(5.4e9)) == 5.2
        assert snap_to_grid(int(1.45e9)) == 1.4

    def test_snap_allows_small_tolerance(self):
        assert snap_to_grid(int(5.18e9)) == 5.2

    def test_snap_below_grid_is_none(self):
        assert snap_to_grid(int(0.2e9)) is None

    def test_grid_is_sorted_unique(self):
        assert list(PAPER_SIZE_GRID) == sorted(set(PAPER_SIZE_GRID))

    def test_on_grid_search(self, cluster):
        snapped = max_model_size_on_grid(cluster, DdpStrategy())
        assert snapped == 1.4  # the paper's DDP cell


class TestModelForBillions:
    @pytest.mark.parametrize("billions", [0.7, 1.4, 5.2, 11.6, 33.3])
    def test_reaches_target(self, billions):
        model = model_for_billions(billions)
        total = total_parameters(model)
        assert total >= billions * 1e9
        assert total <= billions * 1e9 + 6e7  # within one layer
