"""Cache-key correctness for the fast path (satellite of the DES fast
path): changing ``fidelity`` must miss in every cache, and fault-plan
degradation must invalidate the collective-cost memo's topology keying.
"""

import pytest

from repro.api.spec import RunSpec
from repro.api.spec import FIDELITIES as SPEC_FIDELITIES
from repro.campaign import ResultCache
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentSpec
from repro.hardware import dual_node_cluster
from repro.sim.fastpath import FIDELITIES, collective_cost_key


BASE_RUN = dict(strategy="zero2", num_layers=6, nodes=1,
                iterations=4, warmup_iterations=1)


class TestFidelityValidation:
    def test_spec_fidelities_mirror_fastpath(self):
        # spec.py re-declares the tuple to stay cycle-free; keep them
        # in lockstep.
        assert SPEC_FIDELITIES == FIDELITIES

    def test_run_spec_rejects_unknown_fidelity(self):
        with pytest.raises(ConfigurationError):
            RunSpec(fidelity="psychic", **BASE_RUN)

    def test_experiment_spec_rejects_unknown_fidelity(self):
        with pytest.raises(ConfigurationError):
            ExperimentSpec("fig7", fidelity="psychic")

    def test_round_trips(self):
        spec = RunSpec(fidelity="hybrid", **BASE_RUN)
        assert RunSpec.from_dict(spec.to_dict()) == spec
        espec = ExperimentSpec("fig7", fidelity="hybrid")
        assert ExperimentSpec.from_dict(espec.to_dict()) == espec


class TestCacheKeysSeparateFidelities:
    def test_run_spec_key_changes_with_fidelity(self):
        full = RunSpec(**BASE_RUN)
        hybrid = full.replace(fidelity="hybrid")
        assert full.cache_key() != hybrid.cache_key()

    def test_experiment_spec_key_changes_with_fidelity(self):
        full = ExperimentSpec("fig7")
        hybrid = ExperimentSpec("fig7", fidelity="hybrid")
        assert full.cache_key() != hybrid.cache_key()

    def test_default_fidelity_keys_are_stable(self):
        # Explicit "full" and the default must agree, so pre-existing
        # cached results keyed before the field existed are not
        # resurrected under a different identity per construction site.
        assert (RunSpec(**BASE_RUN).cache_key()
                == RunSpec(fidelity="full", **BASE_RUN).cache_key())

    def test_result_cache_misses_across_fidelities(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        full = RunSpec(**BASE_RUN)
        hybrid = full.replace(fidelity="hybrid")
        cache.put(full.cache_key(), kind="run", spec=full.to_dict(),
                  payload={"tflops": 1.0})
        assert cache.get(full.cache_key()) is not None
        assert cache.get(hybrid.cache_key()) is None
        assert cache.misses == 1

    def test_fault_plan_changes_run_key(self):
        clean = RunSpec(**BASE_RUN)
        faulted = clean.replace(faults=("switch0:down@t=1ms,dur=1ms",))
        assert clean.cache_key() != faulted.cache_key()


class TestMemoKeyTracksDegradation:
    def _key(self, topology):
        return collective_cost_key(
            kind="all_reduce", payload_bytes=1e6,
            participants=(0, 1, 4, 5), algorithm="auto", profile="bursty",
            internode_launch_overhead=2.5e-3,
            intranode_launch_overhead=25e-6,
            internode_rate_efficiency=0.55,
            topology_fingerprint=topology.fingerprint(),
            degradation_stamp=topology.degradation_stamp(),
        )

    def test_degradation_invalidates_and_revalidates(self):
        topology = dual_node_cluster().topology
        healthy_key = self._key(topology)
        link = topology.links[0]
        link.set_capacity_fraction(0.5)
        degraded_key = self._key(topology)
        assert degraded_key != healthy_key
        link.set_capacity_fraction(1.0)
        # Reverting the fault restores the healthy key exactly, so
        # healthy-fabric memo entries become valid again.
        assert self._key(topology) == healthy_key

    def test_distinct_degradations_distinct_keys(self):
        topology = dual_node_cluster().topology
        link = topology.links[0]
        link.set_capacity_fraction(0.5)
        half = self._key(topology)
        link.set_capacity_fraction(0.25)
        assert self._key(topology) != half
