"""Memory pools and device basics."""

import pytest

from repro.errors import ConfigurationError, OutOfMemoryError
from repro.hardware.devices import Device, DeviceKind, MemoryPool


class TestMemoryPool:
    def test_allocate_and_free(self):
        pool = MemoryPool(100.0, owner="gpu")
        pool.allocate("params", 60.0)
        assert pool.used_bytes == 60.0
        assert pool.free_bytes == 40.0
        assert pool.free("params") == 60.0
        assert pool.used_bytes == 0.0

    def test_labels_accumulate(self):
        pool = MemoryPool(100.0)
        pool.allocate("a", 10.0)
        pool.allocate("a", 15.0)
        assert pool.usage_by_label() == {"a": 25.0}

    def test_oom_raises_with_details(self):
        pool = MemoryPool(100.0, owner="gpu0")
        pool.allocate("a", 90.0)
        with pytest.raises(OutOfMemoryError) as err:
            pool.allocate("b", 20.0)
        assert err.value.device == "gpu0"
        assert err.value.required_bytes == 20.0
        assert err.value.available_bytes == pytest.approx(10.0)

    def test_oom_leaves_pool_unchanged(self):
        pool = MemoryPool(100.0)
        pool.allocate("a", 90.0)
        with pytest.raises(OutOfMemoryError):
            pool.allocate("b", 20.0)
        assert pool.used_bytes == 90.0

    def test_free_unknown_label_raises(self):
        pool = MemoryPool(10.0, owner="gpu0")
        with pytest.raises(ConfigurationError) as err:
            pool.free("nothing")
        assert "nothing" in str(err.value)
        assert "gpu0" in str(err.value)

    def test_free_unknown_label_missing_ok_sentinel(self):
        pool = MemoryPool(10.0)
        assert pool.free("nothing", missing_ok=True) == 0.0

    def test_double_free_raises(self):
        pool = MemoryPool(10.0)
        pool.allocate("a", 5.0)
        assert pool.free("a") == 5.0
        with pytest.raises(ConfigurationError):
            pool.free("a")

    def test_zero_byte_allocate_is_freeable(self):
        # A zero-byte label still follows the acquire/release protocol:
        # it appears in the label map and frees exactly once.
        pool = MemoryPool(10.0)
        pool.allocate("empty", 0.0)
        assert pool.usage_by_label() == {"empty": 0.0}
        assert pool.free("empty") == 0.0
        with pytest.raises(ConfigurationError):
            pool.free("empty")

    def test_lease_releases_on_exception(self):
        pool = MemoryPool(10.0)
        with pytest.raises(RuntimeError):
            with pool.lease("scratch", 4.0):
                assert pool.used_bytes == 4.0
                raise RuntimeError("boom")
        assert pool.used_bytes == 0.0

    def test_reset(self):
        pool = MemoryPool(10.0)
        pool.allocate("a", 5.0)
        pool.reset()
        assert pool.used_bytes == 0.0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            MemoryPool(0.0)

    def test_rejects_negative_allocation(self):
        pool = MemoryPool(10.0)
        with pytest.raises(ConfigurationError):
            pool.allocate("a", -1.0)

    def test_exact_fill_is_allowed(self):
        pool = MemoryPool(10.0)
        pool.allocate("a", 10.0)
        assert pool.free_bytes == pytest.approx(0.0)


class TestDevice:
    def test_owner_backfilled_from_name(self):
        pool = MemoryPool(10.0)
        device = Device("node0/gpu0", DeviceKind.GPU, memory=pool)
        assert pool.owner == "node0/gpu0"

    def test_rejects_empty_name(self):
        with pytest.raises(ConfigurationError):
            Device("", DeviceKind.GPU)

    def test_hashable_by_name(self):
        a = Device("x", DeviceKind.CPU)
        b = Device("x", DeviceKind.CPU)
        assert hash(a) == hash(b)

    def test_kind_enumeration(self):
        assert {k.value for k in DeviceKind} == {
            "cpu", "dram", "gpu", "nic", "nvme", "switch"
        }
