"""Trace summarization and field-level diffing."""

import json

import pytest

from repro.runtime.kernels import KernelKind
from repro.trace.diff import diff_traces, round_sig, summarize
from repro.trace.model import FlowSpan, Lane, LinkAccount, Span, Trace


@pytest.fixture()
def small_trace():
    return Trace(
        meta={"total_time": 1.0, "iterations": 2},
        spans=[
            Span(0, Lane.COMPUTE, KernelKind.GEMM, "fwd", 0.0, 0.5),
            Span(0, Lane.COMPUTE, KernelKind.GEMM, "bwd", 0.5, 0.8),
            Span(0, Lane.COMMUNICATION, KernelKind.NCCL_ALL_REDUCE, "ar",
                 0.4, 0.7),
        ],
        flows=[FlowSpan(1, "", "a", "b", ("l1",), 100.0, 0.0, 1.0)],
        links=[LinkAccount("l1", "nvlink", 100.0, 1)],
    )


def copy_trace(trace):
    return Trace.from_dict(json.loads(json.dumps(trace.to_dict())))


class TestSummarize:
    def test_counts_and_busy_time(self, small_trace):
        summary = summarize(small_trace)
        assert summary["spans/count"] == 3
        assert summary["spans/compute/gemm/count"] == 2
        assert summary["spans/compute/gemm/busy"] == pytest.approx(0.8)
        assert summary["spans/communication/nccl_all_reduce/busy"] \
            == pytest.approx(0.3)
        assert summary["links/l1/bytes"] == 100.0
        assert summary["flows/bytes"] == 100.0
        assert summary["meta/iterations"] == 2

    def test_summary_is_json_serializable(self, small_trace):
        json.dumps(summarize(small_trace))


class TestDiff:
    def test_self_diff_is_clean(self, small_trace):
        diff = diff_traces(small_trace, copy_trace(small_trace))
        assert diff.clean
        assert diff.render() == "traces match"

    def test_real_trace_self_diff_is_clean(self, traced_ddp):
        _, metrics = traced_ddp
        assert diff_traces(metrics.trace, copy_trace(metrics.trace)).clean

    def test_perturbed_bytes_detected(self, small_trace):
        other = copy_trace(small_trace)
        other.links[0] = LinkAccount("l1", "nvlink", 101.0, 1)
        diff = diff_traces(small_trace, other)
        assert not diff.clean
        assert "links/l1/bytes" in diff.changed
        assert "links/l1/bytes" in diff.render()

    def test_added_and_removed_keys_detected(self, small_trace):
        other = copy_trace(small_trace)
        other.links.append(LinkAccount("l2", "roce", 5.0, 1))
        diff = diff_traces(small_trace, other)
        assert "links/l2/bytes" in diff.added
        reverse = diff_traces(other, small_trace)
        assert "links/l2/bytes" in reverse.removed

    def test_sub_sigfig_jitter_absorbed(self, small_trace):
        other = copy_trace(small_trace)
        other.links[0] = LinkAccount("l1", "nvlink", 100.0 * (1 + 1e-12), 1)
        assert diff_traces(small_trace, other).clean

    def test_span_count_change_detected(self, small_trace):
        other = copy_trace(small_trace)
        other.spans.append(
            Span(0, Lane.COMPUTE, KernelKind.OPTIMIZER, "adam", 0.8, 1.0)
        )
        diff = diff_traces(small_trace, other)
        assert "spans/count" in diff.changed
        assert "spans/compute/optimizer/count" in diff.added


class TestRoundSig:
    def test_zero_and_nonfinite_pass_through(self):
        assert round_sig(0.0) == 0.0
        assert round_sig(float("inf")) == float("inf")

    def test_rounds_to_six_significant_figures(self):
        assert round_sig(123.4567891) == 123.457
        assert round_sig(0.0001234567) == pytest.approx(0.000123457)
