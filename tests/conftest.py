"""Shared pytest configuration.

Adds the ``--update-golden`` flag used by ``tests/test_golden.py`` to
rewrite the committed golden snapshots from the current simulator
output (after an intentional model change)::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden

Also hosts the session-scoped ``traced_ddp`` fixture: one traced
training run shared by every trace-subsystem test module, so the DES
only pays for it once per session.
"""

import pytest


@pytest.fixture(scope="session")
def traced_ddp():
    """One traced quick DDP run: ``(cluster, metrics)``, run once."""
    from repro.core.runner import run_training
    from repro.core.search import model_for_billions
    from repro.experiments.common import make_strategy
    from repro.hardware.presets import dual_node_cluster

    cluster = dual_node_cluster()
    metrics = run_training(cluster, make_strategy("ddp"),
                           model_for_billions(0.7), iterations=2,
                           trace=True)
    return cluster, metrics


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite tests/golden/*.json from the current simulator "
             "output instead of comparing against it",
    )
