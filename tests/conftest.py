"""Shared pytest configuration.

Adds the ``--update-golden`` flag used by ``tests/test_golden.py`` to
rewrite the committed golden snapshots from the current simulator
output (after an intentional model change)::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden
"""


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite tests/golden/*.json from the current simulator "
             "output instead of comparing against it",
    )
