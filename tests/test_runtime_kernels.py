"""GPU compute model and kernel taxonomy."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.gpu import GpuSpec
from repro.runtime.kernels import GpuComputeModel, KernelKind


@pytest.fixture()
def model():
    return GpuComputeModel(GpuSpec(), gemm_efficiency=0.4)


class TestGemmTime:
    def test_scales_linearly(self, model):
        assert model.gemm_time(2e12) == pytest.approx(2 * model.gemm_time(1e12))

    def test_applies_efficiency(self):
        full = GpuComputeModel(GpuSpec(), gemm_efficiency=1.0)
        half = GpuComputeModel(GpuSpec(), gemm_efficiency=0.5)
        assert half.gemm_time(1e12) == pytest.approx(2 * full.gemm_time(1e12))

    def test_a100_peak_magnitude(self, model):
        # 312 TFLOP at 40 % efficiency -> one second of work.
        assert model.gemm_time(0.4 * 312e12) == pytest.approx(1.0)

    def test_negative_flops_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.gemm_time(-1.0)


class TestMemoryBound:
    def test_hbm_bound(self, model):
        seconds = model.memory_bound_time(1555e9 * 0.7)
        assert seconds == pytest.approx(1.0)

    def test_optimizer_time_is_32_bytes_per_param(self, model):
        assert model.optimizer_time(1e9) == pytest.approx(
            model.memory_bound_time(32e9))

    def test_negative_bytes_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.memory_bound_time(-1.0)


class TestValidation:
    def test_efficiency_bounds(self):
        with pytest.raises(ConfigurationError):
            GpuComputeModel(GpuSpec(), gemm_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            GpuComputeModel(GpuSpec(), gemm_efficiency=1.5)
        with pytest.raises(ConfigurationError):
            GpuComputeModel(GpuSpec(), gemm_efficiency=0.4,
                            hbm_efficiency=0.0)


class TestKernelKinds:
    def test_communication_predicate(self):
        assert KernelKind.NCCL_ALL_REDUCE.is_communication
        assert KernelKind.HOST_TRANSFER.is_communication
        assert KernelKind.NVME_IO.is_communication
        assert not KernelKind.GEMM.is_communication
        assert not KernelKind.OPTIMIZER.is_communication

    def test_fig5_categories_present(self):
        values = {k.value for k in KernelKind}
        for required in ("gemm", "elementwise", "optimizer",
                         "nccl_all_reduce", "nccl_all_gather",
                         "nccl_reduce", "nccl_broadcast", "idle"):
            assert required in values
