"""The Workload protocol: one spec contract, two implementations.

Training (:class:`repro.api.RunSpec`) and serving
(:class:`repro.inference.InferenceSpec`) satisfy the same structural
protocol — round-trippable dicts, salted cache keys, human labels, a
``run()`` entry point — which is what lets campaigns, the result cache,
and the cluster daemon treat them uniformly.  These tests pin the
contract itself, cross-implementation.
"""

import pytest

from repro.api import RunSpec
from repro.api.workload import (
    WORKLOAD_KINDS,
    Workload,
    spec_from_payload,
    workload_class,
    workload_kind,
)
from repro.campaign import CampaignSpec, run_campaign
from repro.errors import ConfigurationError
from repro.inference import InferenceSpec


def _spec_for(kind):
    if kind == "train":
        return RunSpec(strategy="zero2", size_billions=0.7, iterations=3)
    return InferenceSpec(size_billions=0.7, gpus=2, num_requests=8)


#: Fixed-salt cache keys: these must NEVER change for an unchanged spec
#: payload (the result cache's correctness depends on it).  The salt is
#: pinned so the golden survives version bumps, which intentionally
#: rotate the *default* salt.
GOLDEN_SALT = "workload-golden"
GOLDEN_KEYS = {
    "train": "23e7c5d923fd356c66680a4b891e8bdd"
             "5759fcbe2da312d569fc8f3bbbdf194e",
    "inference": "59cfdac75cfc462c605d51ff533afbe2"
                 "7bb514eb5f6f3b5d37ec79b3cbae015b",
}
GOLDEN_LABELS = {
    "train": "zero2-0.7b-n1-B",
    "inference": "infer-0.7b-tp2-n1-continuous-p4x8",
}


class TestProtocol:
    def test_kinds(self):
        assert WORKLOAD_KINDS == ("train", "inference")

    @pytest.mark.parametrize("kind", WORKLOAD_KINDS)
    def test_specs_satisfy_protocol(self, kind):
        spec = _spec_for(kind)
        assert isinstance(spec, Workload)
        assert workload_kind(spec) == kind
        assert type(spec) is workload_class(kind)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="workload"):
            workload_class("batch")
        with pytest.raises(ConfigurationError, match="workload"):
            spec_from_payload("batch", {})

    def test_unregistered_spec_type_rejected(self):
        with pytest.raises(ConfigurationError, match="not a registered"):
            workload_kind(object())


class TestRoundTrip:
    @pytest.mark.parametrize("kind", WORKLOAD_KINDS)
    def test_to_dict_from_dict_is_identity(self, kind):
        spec = _spec_for(kind)
        assert type(spec).from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("kind", WORKLOAD_KINDS)
    def test_spec_from_payload_dispatches(self, kind):
        spec = _spec_for(kind)
        assert spec_from_payload(kind, spec.to_dict()) == spec

    @pytest.mark.parametrize("kind", WORKLOAD_KINDS)
    def test_unknown_payload_fields_rejected(self, kind):
        spec = _spec_for(kind)
        payload = dict(spec.to_dict())
        payload["not_a_field"] = 1
        with pytest.raises(ConfigurationError, match="not_a_field"):
            spec_from_payload(kind, payload)


class TestCacheKeys:
    @pytest.mark.parametrize("kind", WORKLOAD_KINDS)
    def test_fixed_salt_golden(self, kind):
        """Keyed payloads are stable across releases (cache contract)."""
        spec = _spec_for(kind)
        assert spec.cache_key(salt=GOLDEN_SALT) == GOLDEN_KEYS[kind]

    @pytest.mark.parametrize("kind", WORKLOAD_KINDS)
    def test_label_golden(self, kind):
        assert _spec_for(kind).label == GOLDEN_LABELS[kind]

    def test_kinds_never_collide(self):
        """A train and an inference spec can never share a cache slot,
        even if their field dicts were to coincide."""
        keys = {kind: _spec_for(kind).cache_key(salt=GOLDEN_SALT)
                for kind in WORKLOAD_KINDS}
        assert len(set(keys.values())) == len(keys)

    @pytest.mark.parametrize("kind", WORKLOAD_KINDS)
    def test_key_tracks_fields(self, kind):
        spec = _spec_for(kind)
        changed = (spec.replace(iterations=spec.iterations + 1)
                   if kind == "train"
                   else spec.replace(num_requests=spec.num_requests + 1))
        assert (changed.cache_key(salt=GOLDEN_SALT)
                != spec.cache_key(salt=GOLDEN_SALT))


class TestCampaignAcrossWorkloads:
    def _campaign(self):
        return CampaignSpec(
            name="workloads",
            strategies=("ddp",),
            sizes_billions=(0.35,),
            iterations=2,
            inference=(InferenceSpec(size_billions=0.35, gpus=2,
                                     num_requests=4),),
        )

    def test_expansion_is_deterministic_and_mixed(self):
        jobs = self._campaign().expand()
        assert [job.kind for job in jobs] == ["run", "inference"]
        assert jobs[1].job_id == "inference/infer-0.35b-tp2-n1-continuous-p4x4"
        again = self._campaign().expand()
        assert [job.job_id for job in again] == [job.job_id for job in jobs]

    def test_campaign_round_trips_through_json_dict(self):
        campaign = self._campaign()
        rebuilt = CampaignSpec.from_dict(campaign.to_dict())
        assert rebuilt == campaign

    def test_serial_and_parallel_payloads_identical(self):
        """Worker count must not leak into any cached payload, for
        either workload kind."""
        serial = run_campaign(self._campaign(), workers=1, cache=None)
        parallel = run_campaign(self._campaign(), workers=2, cache=None)
        assert [job.job_id for job in serial.jobs] == \
               [job.job_id for job in parallel.jobs]
        for ours, theirs in zip(serial.jobs, parallel.jobs):
            assert ours.payload == theirs.payload
