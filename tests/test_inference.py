"""Inference serving: requests, cost model, KV cache, scheduler, service."""

import pytest

from repro.analysis.determinism.differ import diff_headline_runs
from repro.errors import ConfigurationError
from repro.hardware.devices import MemoryPool
from repro.inference import (
    InferenceSpec,
    KvCache,
    PhaseCostModel,
    REQUEST_MIXES,
    decode_flops,
    kv_bytes_per_token,
    poisson_requests,
    prefill_flops,
    run_inference,
    trace_requests,
    weight_bytes,
)
from repro.model.config import paper_model
from repro.sim.engine import ReversedTies, SeededTies


def _tie_name(order):
    if isinstance(order, ReversedTies):
        return "reversed"
    if isinstance(order, SeededTies):
        return "seeded"
    return "fifo"


class TestRequests:
    def test_poisson_is_seed_deterministic(self):
        a = poisson_requests(4.0, 16, seed=7)
        b = poisson_requests(4.0, 16, seed=7)
        assert a == b
        assert poisson_requests(4.0, 16, seed=8) != a

    def test_times_are_increasing_and_positive(self):
        stream = poisson_requests(10.0, 32, seed=7)
        times = [request.time for request in stream]
        assert all(t > 0 for t in times)
        assert times == sorted(times)

    @pytest.mark.parametrize("mix", sorted(REQUEST_MIXES))
    def test_every_mix_fits_the_model_window(self, mix):
        """No template may exceed the models' position window."""
        config = paper_model(num_layers=2)
        for _, template in REQUEST_MIXES[mix]:
            total = template["prompt_tokens"] + template["output_tokens"]
            assert total <= config.max_position_embeddings

    def test_unknown_mix_rejected(self):
        with pytest.raises(ConfigurationError, match="mix"):
            poisson_requests(4.0, 4, mix="nope")

    def test_trace_requests_round_trip_and_validation(self):
        stream = trace_requests([
            {"time": 0.0, "prompt_tokens": 64, "output_tokens": 8},
            {"time": 0.5, "prompt_tokens": 32, "output_tokens": 4,
             "name": "vip"},
        ])
        assert [r.name for r in stream] == ["trace-0", "vip"]
        with pytest.raises(ConfigurationError, match="time"):
            trace_requests([{"prompt_tokens": 1, "output_tokens": 1}])
        with pytest.raises(ConfigurationError, match="back in time"):
            trace_requests([
                {"time": 1.0, "prompt_tokens": 1, "output_tokens": 1},
                {"time": 0.5, "prompt_tokens": 1, "output_tokens": 1},
            ])
        with pytest.raises(ConfigurationError, match="mystery"):
            trace_requests([{"time": 0.0, "prompt_tokens": 1,
                             "output_tokens": 1, "mystery": True}])


class TestCostModel:
    def setup_method(self):
        self.config = paper_model(num_layers=4)

    def test_prefill_flops_scale_with_prompt(self):
        assert prefill_flops(self.config, 256) > prefill_flops(
            self.config, 128) > 0

    def test_decode_flops_grow_with_context(self):
        assert decode_flops(self.config, 512) > decode_flops(
            self.config, 64) > 0

    def test_kv_bytes_formula(self):
        h = self.config.hidden_size
        layers = self.config.num_layers
        assert kv_bytes_per_token(self.config, 2) == 2 * layers * h * 2

    def test_weight_bytes_positive_and_precision_scaled(self):
        assert weight_bytes(self.config, 4) == 2 * weight_bytes(
            self.config, 2) > 0

    def test_tensor_parallel_shards_evenly(self):
        from repro.hardware.presets import single_node_cluster
        gpu = single_node_cluster().nodes[0].spec.gpu
        solo = PhaseCostModel(self.config, gpu, tensor_parallel=1)
        tp4 = PhaseCostModel(self.config, gpu, tensor_parallel=4)
        assert tp4.kv_token_bytes_per_rank * 4 == pytest.approx(
            solo.kv_token_bytes)
        assert tp4.weight_bytes_per_rank * 4 == pytest.approx(
            solo.weight_bytes_per_rank)
        # A shard computes faster than the whole model.
        assert tp4.prefill_time(256) < solo.prefill_time(256)
        assert tp4.decode_step_time([256]) < solo.decode_step_time([256])


class TestKvCache:
    def _pool(self, capacity=1000.0):
        return MemoryPool(capacity, owner="gpu0.hbm")

    def test_budget_is_footprinted_as_slack(self):
        pool = self._pool()
        cache = KvCache([pool], budget_per_rank=800.0,
                        bytes_per_token_per_rank=2.0)
        assert pool.used_bytes == 800.0
        cache.reserve("r0", 100)  # 200 bytes
        assert pool.used_bytes == 800.0  # footprint never moves
        assert pool.usage_by_label()["kv/r0"] == 200.0
        cache.release("r0")
        assert pool.usage_by_label()["kv/slack"] == 800.0
        cache.close()
        assert pool.used_bytes == 0.0

    def test_fits_gates_reserve(self):
        cache = KvCache([self._pool()], budget_per_rank=100.0,
                        bytes_per_token_per_rank=1.0)
        assert cache.fits(100)
        assert not cache.fits(101)
        cache.reserve("a", 60)
        assert not cache.fits(41)
        with pytest.raises(ConfigurationError, match="admission"):
            cache.reserve("b", 41)
        cache.reserve("b", 40)
        assert cache.resident_requests == ["a", "b"]
        assert cache.peak_reserved_per_rank == 100.0

    def test_double_reserve_and_unknown_release_raise(self):
        cache = KvCache([self._pool()], budget_per_rank=100.0,
                        bytes_per_token_per_rank=1.0)
        cache.reserve("a", 10)
        with pytest.raises(ConfigurationError, match="already"):
            cache.reserve("a", 10)
        with pytest.raises(ConfigurationError, match="no KV"):
            cache.release("ghost")

    def test_close_with_live_reservations_is_loud(self):
        cache = KvCache([self._pool()], budget_per_rank=100.0,
                        bytes_per_token_per_rank=1.0)
        cache.reserve("a", 10)
        with pytest.raises(ConfigurationError, match="live"):
            cache.close()


class TestInferenceSpec:
    def test_needs_exactly_one_size(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            InferenceSpec()
        with pytest.raises(ConfigurationError, match="exactly one"):
            InferenceSpec(size_billions=0.7, num_layers=4)

    @pytest.mark.parametrize("changes,match", [
        ({"batching": "dynamic"}, "batching"),
        ({"request_mix": "nope"}, "mix"),
        ({"kv_fraction": 0.0}, "kv_fraction"),
        ({"rate_per_second": 0.0}, "rate"),
        ({"gpus": 0}, "tensor-parallel"),
        ({"slo_ttft_s": 0.0}, "SLO"),
        ({"tie_order": "sideways"}, "tie order"),
    ])
    def test_validation(self, changes, match):
        with pytest.raises(ConfigurationError, match=match):
            InferenceSpec(size_billions=0.7, **changes)

    def test_replace_revalidates_and_rejects_unknown(self):
        spec = InferenceSpec(size_billions=0.7)
        with pytest.raises(ConfigurationError, match="tensor-parallel"):
            spec.replace(gpus=0)
        with pytest.raises(ConfigurationError, match="warp_factor"):
            spec.replace(warp_factor=9)
        assert spec.replace(gpus=2).gpus == 2

    def test_oversized_request_is_rejected_up_front(self):
        spec = InferenceSpec(size_billions=0.7, max_batch_tokens=64)
        with pytest.raises(ConfigurationError, match="never be admitted"):
            spec.expand_requests()


class TestService:
    def _spec(self, **overrides):
        base = dict(size_billions=0.35, gpus=2, num_requests=10,
                    rate_per_second=8.0, leak_check=True)
        base.update(overrides)
        return InferenceSpec(**base)

    def test_serves_every_request_leak_free(self):
        run = run_inference(self._spec())
        report = run.report
        assert report.requests_completed == report.requests_submitted == 10
        assert report.leaks is not None and report.leaks.clean
        assert report.tokens_generated > 0
        assert 0.0 <= report.slo_attainment <= 1.0
        assert report.kv_peak_bytes <= report.kv_budget_bytes
        assert report.ttft_p50_s <= report.ttft_p99_s
        assert report.goodput_requests_per_s > 0

    @pytest.mark.parametrize("batching", ["continuous", "static"])
    def test_both_policies_complete(self, batching):
        report = run_inference(self._spec(batching=batching)).report
        assert report.requests_completed == 10
        assert report.batching == batching

    def test_continuous_beats_static_on_queue_wait(self):
        """Continuous batching admits at step boundaries, so under the
        same traffic nobody waits longer than under static batching."""
        continuous = run_inference(self._spec()).report
        static = run_inference(self._spec(batching="static")).report
        assert (continuous.queue_wait_p99_s
                <= static.queue_wait_p99_s + 1e-9)
        assert continuous.total_time_s <= static.total_time_s + 1e-9

    def test_payload_bit_identical_across_runs(self):
        spec = self._spec(trace=True)
        assert (run_inference(spec).report.to_dict()
                == run_inference(spec).report.to_dict())

    def test_tie_order_invariance(self):
        """Same spec => field-identical reports under fifo/reversed/
        seeded engine tie orders (the PR 3 differ harness)."""
        spec = self._spec()

        def run(order):
            perturbed = spec.replace(tie_order=_tie_name(order))
            return run_inference(perturbed).report.headline()

        diffs, orders = diff_headline_runs(run, seed=7)
        assert orders == ["reversed", "seeded[7]"]
        assert diffs == []

    def test_trace_has_serving_spans_and_flows(self):
        run = run_inference(self._spec(trace=True))
        assert run.trace is not None
        names = {span.name for span in run.trace.spans}
        assert any(name.startswith("prefill[") for name in names)
        assert any(name.startswith("decode[") for name in names)
        assert run.trace.flows  # TP all-reduces crossed real links

    def test_single_gpu_has_no_collective_flows(self):
        run = run_inference(self._spec(gpus=1, trace=True))
        assert run.report.requests_completed == 10
        assert not run.trace.flows

    def test_trace_arrivals_replay(self):
        spec = InferenceSpec(
            size_billions=0.35, gpus=2, arrivals="trace",
            trace_requests=(
                {"time": 0.0, "prompt_tokens": 64, "output_tokens": 4},
                {"time": 0.1, "prompt_tokens": 128, "output_tokens": 8},
            ),
            leak_check=True,
        )
        report = run_inference(spec).report
        assert report.requests_completed == 2
        assert report.leaks.clean

    def test_tp_must_divide_heads(self):
        with pytest.raises(ConfigurationError, match="divide"):
            run_inference(self._spec(gpus=3))


class TestClusterIntegration:
    def test_mixed_stream_shares_the_fabric(self):
        """Train + inference jobs on one engine/ledger set, leak-free."""
        from repro.cluster import ClusterScenario, run_cluster

        scenario = ClusterScenario(
            name="mixed", nodes=2, arrivals="poisson",
            rate_per_hour=2000.0, num_jobs=10, mix="mixed",
            trace=True, leak_check=True,
        )
        run = run_cluster(scenario)
        report = run.report
        assert report.jobs_completed == 10
        assert report.jobs_failed == 0
        assert "serving" in report.tenants
        assert report.tenants["serving"]["jobs_completed"] >= 1
        assert run.leaks is not None and run.leaks.clean
        serving_spans = [span for span in run.trace.spans
                         if "prefill[" in span.name
                         or "decode[" in span.name]
        assert serving_spans
        assert all(span.name.split(":")[0].startswith("job")
                   for span in serving_spans)

    def test_inference_job_survives_preemption(self):
        """A low-priority serving instance is preempted by a training
        job, requeues with its completed requests retained, and still
        finishes every request."""
        from repro.cluster import ClusterScenario, run_cluster

        scenario = ClusterScenario(
            name="preempt", nodes=1, arrivals="trace",
            trace_jobs=(
                {"time": 0.0, "name": "serve", "tenant": "serving",
                 "workload": "inference", "size_billions": 0.35,
                 "gpus": 4, "iterations": 6, "priority": 0,
                 "request_rate_per_s": 0.5},
                {"time": 1.0, "name": "train", "tenant": "research",
                 "strategy": "ddp", "size_billions": 0.35, "gpus": 4,
                 "iterations": 2, "priority": 5},
            ),
            leak_check=True,
        )
        run = run_cluster(scenario)
        report = run.report
        assert report.jobs_completed == 2
        assert report.preemptions >= 1
        assert report.tenants["serving"]["preemptions"] >= 1
        assert report.tenants["serving"]["jobs_completed"] == 1
        assert run.leaks is not None and run.leaks.clean

    def test_mixed_cluster_is_tie_order_invariant(self):
        from repro.cluster import ClusterScenario, run_cluster

        scenario = ClusterScenario(
            name="mixed-ties", nodes=2, arrivals="poisson",
            rate_per_hour=3000.0, num_jobs=6, mix="mixed",
        )

        def run(order):
            perturbed = scenario.replace(tie_order=_tie_name(order))
            return run_cluster(perturbed).report.headline()

        diffs, orders = diff_headline_runs(run, seed=7)
        assert orders == ["reversed", "seeded[7]"]
        assert diffs == []

    def test_bad_serving_job_is_rejected_up_front(self):
        from repro.cluster import ClusterScenario, run_cluster

        scenario = ClusterScenario(
            name="bad", nodes=1, arrivals="trace",
            trace_jobs=(
                {"time": 0.0, "name": "serve", "workload": "inference",
                 "size_billions": 0.35, "gpus": 4, "iterations": 2,
                 "max_batch_tokens": 64},
            ),
        )
        with pytest.raises(ConfigurationError, match="never be admitted"):
            run_cluster(scenario)
