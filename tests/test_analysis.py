"""Static-analysis subsystem: findings, passes, liveness, source lints."""

import dataclasses
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisContext,
    AnalysisPass,
    BaselineEntry,
    Finding,
    Report,
    Severity,
    analyze_run_config,
    analyze_source,
    apply_baseline,
    check_liveness,
    claim_codes,
    code_owners,
    diagnose,
    iter_passes,
    load_baseline,
    register_pass,
    render_json,
    render_text,
    run_passes,
    self_check,
    write_baseline,
)
from repro.analysis.dimensions.vocabulary import lint_vocabulary_tree
from repro.analysis.registry import get_pass
from repro.analysis.source_lints import lint_source_tree
from repro.core.runner import run_training
from repro.core.search import model_for_billions
from repro.errors import ConfigurationError, SimulationError
from repro.experiments.common import ALL_STRATEGIES, make_strategy
from repro.hardware import Cluster, ClusterSpec, dual_node_cluster, single_node_cluster
from repro.hardware.link import LinkClass
from repro.model.states import OffloadTarget, ZeroStage
from repro.parallel import DdpStrategy, zero2, zero3
from repro.parallel.placement import PLACEMENTS
from repro.parallel.zero import ZeroStrategy
from repro.sim.engine import Engine


# ---------------------------------------------------------------------------
# Finding / Report model
# ---------------------------------------------------------------------------

class TestReport:
    def test_severity_ordering_and_exit_code(self):
        report = Report()
        assert report.ok and report.exit_code == 0
        report.add(Finding("p", Severity.WARNING, "X001", "meh"))
        assert report.ok and report.exit_code == 0
        report.add(Finding("p", Severity.ERROR, "X002", "bad"))
        assert not report.ok and report.exit_code == 1
        assert len(report.errors) == 1 and len(report.warnings) == 1

    def test_exit_code_at_threshold(self):
        report = Report()
        assert report.exit_code_at(Severity.WARNING) == 0
        report.add(Finding("p", Severity.WARNING, "X001", "meh"))
        assert report.exit_code_at(Severity.ERROR) == 0
        assert report.exit_code_at(Severity.WARNING) == 1
        report.add(Finding("p", Severity.ERROR, "X002", "bad"))
        assert report.exit_code_at(Severity.ERROR) == 1
        assert report.exit_code == report.exit_code_at(Severity.ERROR)

    def test_raise_on_error_message_contains_codes(self):
        report = Report()
        report.add(Finding("p", Severity.ERROR, "X002", "it broke"))
        with pytest.raises(ConfigurationError, match=r"\[X002\] it broke"):
            report.raise_on_error("preflight failed")

    def test_warnings_do_not_raise(self):
        report = Report()
        report.add(Finding("p", Severity.WARNING, "X001", "meh"))
        report.raise_on_error("preflight failed")

    def test_to_dict_round_trips_through_json(self):
        report = Report()
        report.passes_run.append("p")
        report.add(Finding("p", Severity.INFO, "X000", "note",
                           subject="s", location="f.py:3"))
        payload = json.loads(render_json(report))
        assert payload["ok"] is True
        assert payload["passes_run"] == ["p"]
        assert payload["findings"][0]["severity"] == "info"
        assert payload["findings"][0]["location"] == "f.py:3"

    def test_render_text_groups_errors_first(self):
        report = Report()
        report.add(Finding("p", Severity.INFO, "X000", "a note"))
        report.add(Finding("p", Severity.ERROR, "X002", "the error"))
        text = render_text(report)
        assert text.index("the error") < text.index("a note")
        assert "1 errors" in text


# ---------------------------------------------------------------------------
# Pass registry
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError):
            register_pass("parallel-degrees", family="config",
                          description="dup")(lambda ctx: [])

    def test_unknown_family_rejected(self):
        with pytest.raises(ConfigurationError):
            register_pass("x-unique-name", family="nope",
                          description="bad")(lambda ctx: [])

    def test_cheap_only_excludes_memory_capacity(self):
        names = [p.name for p in iter_passes(("config",), cheap_only=True)]
        assert "memory-capacity" not in names
        assert "parallel-degrees" in names

    def test_get_pass(self):
        assert get_pass("memory-capacity").cheap is False


# ---------------------------------------------------------------------------
# Finding-code registry discipline
# ---------------------------------------------------------------------------

class TestRegistryCodes:
    def test_self_check_passes_on_builtin_registry(self):
        stats = self_check()
        assert stats["passes"] >= 16
        assert stats["claimed_codes"] >= 48
        assert "determinism" not in stats["families"]  # DET lives in source

    def test_code_owner_spot_checks(self):
        owners = code_owners()
        assert owners["CFG001"] == "parallel-degrees"
        assert owners["LIVE001"] == "des-liveness"
        assert owners["DET001"] == "det-set-iteration"
        assert owners["DET110"] == "schedule-sanitizer"
        assert owners["DET120"] == "perturbation-differ"

    def test_campaign_cache_codes_claimed(self):
        from repro.campaign.cache import CACHE_CODES  # claims on import

        owners = code_owners()
        for code in CACHE_CODES:
            assert owners[code] == "campaign-cache"
        self_check()  # the claims survive the registry's own audit

    def test_cross_owner_code_collision_rejected(self):
        claim_codes("collision-test-owner", ("ZZZ901",))
        claim_codes("collision-test-owner", ("ZZZ901",))  # reclaim OK
        with pytest.raises(ConfigurationError, match="ZZZ901"):
            claim_codes("some-other-owner", ("ZZZ901",))

    def test_malformed_code_rejected(self):
        with pytest.raises(ConfigurationError):
            claim_codes("malformed-test-owner", ("not-a-code",))

    def test_register_pass_with_colliding_code_rejected(self):
        with pytest.raises(ConfigurationError):
            register_pass("x-colliding-pass", family="config",
                          description="steals CFG001",
                          codes=("CFG001",))(lambda ctx: [])
        with pytest.raises(KeyError):
            get_pass("x-colliding-pass")  # collision kept it unregistered

    def test_pass_emitting_undeclared_code_rejected(self):
        rogue = AnalysisPass(
            name="x-rogue", family="source", description="lies about codes",
            cheap=True,
            fn=lambda ctx: [Finding("x-rogue", Severity.INFO, "ZZZ999", "m")],
            codes=("ZZZ998",),
        )
        with pytest.raises(ConfigurationError, match="ZZZ999"):
            rogue.run(AnalysisContext())


# ---------------------------------------------------------------------------
# Accepted-findings baseline
# ---------------------------------------------------------------------------

class TestBaseline:
    def _report(self):
        report = Report()
        report.add(Finding("p", Severity.WARNING, "DET001", "racy fold",
                           subject="pending", location="sim/x.py:12"))
        report.add(Finding("p", Severity.ERROR, "DET020", "wall clock",
                           location="sim/y.py:3"))
        return report

    def test_write_load_apply_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(self._report(), path)
        entries = load_baseline(path)
        assert len(entries) == 2
        filtered, stale = apply_baseline(self._report(), entries)
        assert filtered.findings == []
        assert stale == []

    def test_matching_ignores_line_numbers(self):
        entry = BaselineEntry(code="DET001", file="sim/x.py")
        shifted = Finding("p", Severity.WARNING, "DET001", "racy fold",
                          location="sim/x.py:99")
        assert entry.matches(shifted)

    def test_subject_narrows_the_match(self):
        entry = BaselineEntry(code="DET001", file="sim/x.py",
                              subject="pending")
        other = Finding("p", Severity.WARNING, "DET001", "racy fold",
                        subject="other_set", location="sim/x.py:12")
        assert not entry.matches(other)

    def test_stale_entries_surface(self):
        entries = [BaselineEntry(code="DET030", file="gone.py")]
        filtered, stale = apply_baseline(self._report(), entries)
        assert len(filtered.findings) == 2
        assert stale == entries

    def test_bad_baseline_files_raise(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(ConfigurationError):
            load_baseline(missing)
        bad_shape = tmp_path / "bad.json"
        bad_shape.write_text('{"version": 1}')
        with pytest.raises(ConfigurationError):
            load_baseline(bad_shape)
        bad_version = tmp_path / "v9.json"
        bad_version.write_text('{"version": 9, "accepted": []}')
        with pytest.raises(ConfigurationError):
            load_baseline(bad_version)
        bad_entry = tmp_path / "entry.json"
        bad_entry.write_text('{"version": 1, "accepted": [{"code": "X"}]}')
        with pytest.raises(ConfigurationError):
            load_baseline(bad_entry)


# ---------------------------------------------------------------------------
# Config/topology lints on real configurations
# ---------------------------------------------------------------------------

class TestAnalyzeRunConfig:
    @pytest.mark.parametrize("name", sorted(ALL_STRATEGIES))
    def test_shipped_strategies_have_no_errors(self, name):
        placement = PLACEMENTS["B"]
        if "nvme" in name:
            cluster = Cluster(ClusterSpec(num_nodes=1,
                                          node=placement.node_spec()))
        else:
            cluster = single_node_cluster()
        report = analyze_run_config(cluster, make_strategy(name),
                                    model_for_billions(1.4),
                                    placement=placement)
        assert report.ok, [f.message for f in report.errors]

    def test_tensor_parallel_must_divide_world(self):
        report = analyze_run_config(dual_node_cluster(), tensor_parallel=3)
        assert [f.code for f in report.errors] == ["CFG002"]

    def test_pipeline_parallel_must_divide_world(self):
        report = analyze_run_config(dual_node_cluster(), pipeline_parallel=5)
        assert "CFG003" in [f.code for f in report.errors]

    def test_product_must_divide_world(self):
        report = analyze_run_config(dual_node_cluster(),
                                    tensor_parallel=4, pipeline_parallel=2)
        assert report.ok  # 4 x 2 = 8 GPUs
        report = analyze_run_config(
            Cluster(ClusterSpec(num_nodes=2)),
            tensor_parallel=8, pipeline_parallel=2)
        assert "CFG004" in [f.code for f in report.errors]

    def test_degree_product_mismatch_flagged(self):
        class BrokenDegrees(DdpStrategy):
            def data_parallel_degree(self, ctx):
                return 3  # never matches a 4- or 8-GPU world

        report = analyze_run_config(single_node_cluster(), BrokenDegrees(),
                                    model_for_billions(0.7))
        assert "CFG001" in [f.code for f in report.errors]

    def test_corrupt_partition_accounting_flagged(self):
        class LeakyZero(ZeroStrategy):
            def memory_plan(self, ctx):
                plan = super().memory_plan(ctx)
                plan.gpu["optimizer_states"] *= 2  # breaks the 12 B/param sum
                return plan

        report = analyze_run_config(single_node_cluster(),
                                    LeakyZero(ZeroStage.OPTIMIZER),
                                    model_for_billions(0.7))
        assert "CFG010" in [f.code for f in report.errors]

    def test_illegal_offload_target_flagged(self):
        strategy = make_strategy("zero1_opt_cpu")
        strategy.optimizer_target = OffloadTarget.NVME  # ZeRO-1 cannot
        report = analyze_run_config(single_node_cluster(), strategy,
                                    model_for_billions(0.7))
        assert "CFG020" in [f.code for f in report.errors]

    def test_nvme_plan_needs_scratch_drives(self):
        # The stock single-node preset has fewer scratch drives than
        # placement G (4 drives) expects.
        report = analyze_run_config(single_node_cluster(),
                                    make_strategy("zero3_opt_nvme"),
                                    model_for_billions(1.4),
                                    placement=PLACEMENTS["G"])
        assert "CFG021" in [f.code for f in report.errors]

    def test_memory_capacity_predicts_oom(self):
        report = analyze_run_config(single_node_cluster(),
                                    make_strategy("zero1_opt_cpu"),
                                    model_for_billions(60))
        codes = {f.code for f in report.errors}
        assert {"CFG030", "CFG031", "CFG032"} <= codes

    def test_memory_capacity_not_in_cheap_set(self):
        report = analyze_run_config(single_node_cluster(),
                                    make_strategy("zero1_opt_cpu"),
                                    model_for_billions(60), cheap_only=True)
        assert report.ok
        assert "memory-capacity" not in report.passes_run

    def test_probe_error_becomes_finding(self):
        class ExplodingStrategy(DdpStrategy):
            def memory_plan(self, ctx):
                raise ConfigurationError("boom")

        report = analyze_run_config(single_node_cluster(),
                                    ExplodingStrategy(),
                                    model_for_billions(0.7))
        assert "CFG000" in [f.code for f in report.errors]

    def test_pipeline_micro_batch_divisibility(self):
        model = model_for_billions(1.4)
        report = analyze_run_config(dual_node_cluster(), model=model,
                                    pipeline_parallel=8)
        # 16 micro-batches over global batch 16*8=128: divides cleanly.
        assert "CFG042" not in [f.code for f in report.findings]
        from repro.model.config import TrainingConfig
        report = analyze_run_config(
            dual_node_cluster(), model=model, pipeline_parallel=8,
            training=TrainingConfig(micro_batch_per_gpu=3))
        assert "CFG042" in [f.code for f in report.errors]


class TestTopologyLints:
    def test_presets_are_clean(self):
        for cluster in (single_node_cluster(), dual_node_cluster()):
            report = run_passes(AnalysisContext(cluster=cluster),
                                ("topology",))
            assert report.ok, [f.message for f in report.errors]

    def test_absurd_bandwidth_flagged(self):
        cluster = single_node_cluster()
        link = cluster.topology.links_of_class(LinkClass.NVLINK)[0]
        link.spec = dataclasses.replace(
            link.spec, bandwidth_per_direction=1e14)
        report = run_passes(AnalysisContext(cluster=cluster), ("topology",))
        assert "TOPO011" in [f.code for f in report.errors]

    def test_off_table_bandwidth_warns(self):
        cluster = single_node_cluster()
        link = cluster.topology.links_of_class(LinkClass.NVLINK)[0]
        link.spec = dataclasses.replace(
            link.spec, bandwidth_per_direction=link.spec.
            bandwidth_per_direction / 10)
        report = run_passes(AnalysisContext(cluster=cluster), ("topology",))
        assert "TOPO010" in [f.code for f in report.warnings]

    def test_unreachable_device_flagged(self):
        cluster = single_node_cluster()
        topology = cluster.topology
        # Cut every link to one NVMe drive.
        victim = cluster.nodes[0].nvme_drives[0].name
        topology._links = [  # type: ignore[attr-defined]
            link for link in topology._links
            if victim not in (link.endpoint_a, link.endpoint_b)
        ]
        report = run_passes(AnalysisContext(cluster=cluster), ("topology",))
        findings = [f for f in report.errors if f.code == "TOPO020"]
        assert findings and victim in findings[0].message

    def test_half_duplex_non_dram_flagged(self):
        cluster = single_node_cluster()
        link = cluster.topology.links_of_class(LinkClass.PCIE_GPU)[0]
        link.spec = dataclasses.replace(link.spec, duplex=False)
        report = run_passes(AnalysisContext(cluster=cluster), ("topology",))
        assert "TOPO001" in [f.code for f in report.errors]


# ---------------------------------------------------------------------------
# DES liveness diagnostics
# ---------------------------------------------------------------------------

class TestLiveness:
    def test_deadlocked_process_is_named(self):
        engine = Engine()
        stuck = engine.event()  # nobody ever triggers this

        def victim():
            yield stuck

        engine.process(victim(), name="optimizer-drain")
        engine.run()
        findings = diagnose(engine)
        assert [f.subject for f in findings] == ["optimizer-drain"]
        assert "SimEvent" in findings[0].message
        with pytest.raises(SimulationError, match="optimizer-drain"):
            check_liveness(engine)

    def test_all_of_deadlock_reports_pending_children(self):
        engine = Engine()
        never = engine.event()

        def victim():
            yield engine.all_of([engine.timeout(1.0), never])

        engine.process(victim(), name="barrier")
        engine.run()
        findings = diagnose(engine)
        assert len(findings) == 1
        assert "AllOf" in findings[0].message
        assert "1/2 children pending" in findings[0].message

    def test_transitive_wait_names_both_processes(self):
        engine = Engine()
        never = engine.event()

        def inner():
            yield never

        def outer():
            yield engine.process(inner(), name="inner")

        engine.process(outer(), name="outer")
        engine.run()
        stalled = {f.subject for f in diagnose(engine)}
        assert stalled == {"inner", "outer"}

    def test_any_of_race_does_not_false_positive(self):
        # The AnyOf loser is never triggered, but its waiter already won
        # the race — a healthy run must produce no findings.
        engine = Engine()
        slow = engine.timeout(100.0)

        def racer():
            yield engine.any_of([engine.timeout(1.0), slow])

        engine.process(racer(), name="racer")
        engine.run(until=5.0)
        assert not slow.callbacks  # AnyOf detached itself from the loser
        assert diagnose(engine) == []

    def test_undrained_engine_yields_no_findings(self):
        engine = Engine()

        def worker():
            yield engine.timeout(10.0)

        engine.process(worker(), name="worker")
        engine.run(until=1.0)
        assert engine.peek() is not None
        assert diagnose(engine) == []

    def test_healthy_training_run_passes_liveness(self):
        cluster = single_node_cluster()
        run_training(cluster, zero2(), model_for_billions(0.7), iterations=2)


# ---------------------------------------------------------------------------
# Unit-vocabulary lints (DIM010/DIM011, formerly SRC001/SRC002)
# ---------------------------------------------------------------------------

class TestDimVocabulary:
    def _lint(self, tmp_path, source, name="mod.py"):
        (tmp_path / name).write_text(textwrap.dedent(source))
        return lint_vocabulary_tree(tmp_path)

    def test_magic_decimal_constant_flagged(self, tmp_path):
        findings = self._lint(tmp_path, "CAPACITY = 40 * 1e9\n")
        assert [f.code for f in findings] == ["DIM010"]
        assert "GB" in findings[0].message
        assert findings[0].location == "mod.py:1"

    def test_magic_pow2_constant_flagged_once(self, tmp_path):
        findings = self._lint(tmp_path, "CHUNK = 2**30\n")
        assert [f.code for f in findings] == ["DIM010"]
        assert "GIB" in findings[0].message

    def test_units_module_is_exempt(self, tmp_path):
        findings = self._lint(tmp_path, "GB = 1e9\n", name="units.py")
        assert findings == []

    def test_time_equality_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            def check(start_time, end_time):
                return start_time == end_time
            """)
        assert [f.code for f in findings] == ["DIM011"]

    def test_endpoint_names_are_not_times(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            def same(link):
                return link.endpoint_a == link.endpoint_b
            """)
        assert findings == []

    def test_zero_comparison_tolerated(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            def idle(busy_time):
                return busy_time == 0
            """)
        assert findings == []

    def test_syntax_error_skipped_not_raised(self, tmp_path):
        findings = self._lint(tmp_path, "def broken(:\n")
        assert findings == []  # unit-hygiene owns the SRC000 report


# ---------------------------------------------------------------------------
# Source-hygiene lint
# ---------------------------------------------------------------------------

class TestSourceLints:
    def _lint(self, tmp_path, source, name="mod.py"):
        (tmp_path / name).write_text(textwrap.dedent(source))
        return lint_source_tree(tmp_path)

    def test_process_yielding_constant_flagged(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            def worker(engine):
                yield engine.timeout(1.0)
                yield 5
            """)
        assert [f.code for f in findings] == ["SRC003"]
        assert findings[0].severity is Severity.ERROR
        assert "worker" in findings[0].message

    def test_plain_generator_not_a_process(self, tmp_path):
        findings = self._lint(
            tmp_path,
            """
            def numbers():
                yield 1
                yield 2
            """)
        assert findings == []

    def test_syntax_error_reported_not_raised(self, tmp_path):
        findings = self._lint(tmp_path, "def broken(:\n")
        assert [f.code for f in findings] == ["SRC000"]

    def test_own_tree_is_clean_modulo_baseline(self):
        report = analyze_source()
        assert report.ok, [f.message for f in report.errors]
        baseline = load_baseline(
            Path(__file__).parent.parent / "analysis-baseline.json")
        filtered, stale = apply_baseline(report, baseline)
        assert stale == [], [e.to_dict() for e in stale]
        assert filtered.findings == [], [
            f"{f.location}: {f.message}" for f in filtered.findings
        ]


# ---------------------------------------------------------------------------
# run_training preflight hook
# ---------------------------------------------------------------------------

class TestPreflightHook:
    def _broken_strategy(self):
        class BrokenDegrees(DdpStrategy):
            def data_parallel_degree(self, ctx):
                return 3

        return BrokenDegrees()

    def test_preflight_rejects_broken_config(self):
        with pytest.raises(ConfigurationError,
                           match="pre-run static analysis failed"):
            run_training(single_node_cluster(), self._broken_strategy(),
                         model_for_billions(0.7), iterations=2)

    def test_preflight_can_be_disabled(self):
        # With the hook off, the same config gets past the analysis gate
        # and fails much later, in the kernel-timing arithmetic.
        with pytest.raises(ConfigurationError,
                           match=r"dp \(3\) x mp \(1\)"):
            run_training(single_node_cluster(), self._broken_strategy(),
                         model_for_billions(0.7), iterations=2,
                         preflight=False)

    def test_preflight_does_not_predict_oom(self):
        # Too-large models must still surface as OutOfMemoryError (the
        # search's backoff signal), not as an analysis failure.
        from repro.errors import OutOfMemoryError
        with pytest.raises(OutOfMemoryError):
            run_training(single_node_cluster(), zero3(),
                         model_for_billions(60), iterations=2)
