"""Job-scoped cluster views: rank arithmetic over shared hardware."""

import pytest

from repro.cluster.views import ClusterView, NodeView, probe_view
from repro.errors import ConfigurationError, TopologyError
from repro.hardware import Cluster, ClusterSpec


@pytest.fixture()
def cluster():
    c = Cluster(ClusterSpec(num_nodes=2))
    c.reset()
    return c


class TestClusterView:
    def test_intra_node_subset(self, cluster):
        view = ClusterView(cluster, [(1, (1, 3))])
        assert view.num_nodes == 1
        assert view.gpus_per_node == 2
        assert view.num_gpus == 2
        assert view.gpu(0) is cluster.nodes[1].gpus[1]
        assert view.gpu(1) is cluster.nodes[1].gpus[3]

    def test_whole_node_allocation(self, cluster):
        per_node = cluster.gpus_per_node
        view = ClusterView(cluster, [
            (0, tuple(range(per_node))),
            (1, tuple(range(per_node))),
        ])
        assert view.num_gpus == cluster.num_gpus
        assert view.gpus_per_node == per_node
        # rank arithmetic matches the real cluster's
        for rank in range(view.num_gpus):
            assert view.gpu(rank) is cluster.gpu(rank)

    def test_global_rank_mapping(self, cluster):
        view = ClusterView(cluster, [(1, (0, 2))])
        per_node = cluster.gpus_per_node
        assert view.global_rank(0) == per_node
        assert view.global_rank(1) == per_node + 2
        assert view.gpu(1) is cluster.gpu(per_node + 2)

    def test_shared_devices_not_copies(self, cluster):
        view = ClusterView(cluster, [(0, (0,))])
        pool = view.gpu(0).memory
        pool.allocate("probe", 1024)
        assert cluster.gpu(0).memory.used_bytes == 1024
        pool.free("probe")

    def test_node_view_delegates_to_node(self, cluster):
        view = NodeView(cluster.nodes[0], (1,))
        assert view.gpus == [cluster.nodes[0].gpus[1]]
        assert view.drams is cluster.nodes[0].drams

    def test_dram_for_rank_follows_socket(self, cluster):
        view = ClusterView(cluster, [(0, (0, 1, 2, 3))])
        for rank in range(4):
            assert view.dram_for_rank(rank) is cluster.dram_for_rank(rank)

    def test_out_of_range_rank_rejected(self, cluster):
        view = ClusterView(cluster, [(0, (0, 1))])
        with pytest.raises(TopologyError):
            view.gpu(2)
        with pytest.raises(TopologyError):
            view.node_of_rank(-1)

    def test_empty_allocation_rejected(self, cluster):
        with pytest.raises(ConfigurationError):
            ClusterView(cluster, [])

    def test_ragged_allocation_rejected(self, cluster):
        with pytest.raises(ConfigurationError, match="ragged"):
            ClusterView(cluster, [(0, (0, 1)), (1, (0, 1, 2))])

    def test_partial_multi_node_rejected(self, cluster):
        with pytest.raises(ConfigurationError, match="whole nodes"):
            ClusterView(cluster, [(0, (0, 1)), (1, (0, 1))])


class TestProbeView:
    def test_intra_node_probe(self, cluster):
        view = probe_view(cluster, 3)
        assert view.num_gpus == 3
        assert view.num_nodes == 1

    def test_whole_node_probe(self, cluster):
        view = probe_view(cluster, 2 * cluster.gpus_per_node)
        assert view.num_nodes == 2
        assert view.gpus_per_node == cluster.gpus_per_node

    def test_unpackable_shape_rejected(self, cluster):
        with pytest.raises(ConfigurationError, match="whole nodes"):
            probe_view(cluster, cluster.gpus_per_node + 1)

    def test_oversized_probe_rejected(self, cluster):
        with pytest.raises(ConfigurationError, match="has"):
            probe_view(cluster, 4 * cluster.num_gpus)
