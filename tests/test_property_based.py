"""Property-based tests (hypothesis) on core data structures/invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.collectives.primitives import (
    CollectiveKind,
    ring_step_count,
    ring_traffic_factor,
)
from repro.core.runner import run_training
from repro.core.search import model_for_billions
from repro.faults import FaultEvent, FaultKind, FaultPlan
from repro.hardware import single_node_cluster
from repro.hardware.link import BandwidthLedger
from repro.model.config import paper_model
from repro.model.params import layers_for_target_params, total_parameters
from repro.model.states import (
    OffloadTarget,
    ZeroStage,
    zero_states,
)
from repro.parallel import zero2
from repro.parallel.schedule import layer_chunks
from repro.sim.engine import Engine
from repro.workloads.dataset import LmDataset
from repro.workloads.tokenizer import Tokenizer


# --- bandwidth ledger ---------------------------------------------------------
@given(
    records=st.lists(
        st.tuples(
            st.floats(0.0, 100.0),
            st.floats(0.001, 50.0),
            st.floats(1.0, 1e12),
        ),
        min_size=1, max_size=20,
    ),
    num_bins=st.integers(1, 64),
)
@settings(max_examples=60, deadline=None)
def test_ledger_sampling_conserves_bytes(records, num_bins):
    """Bytes inside the window equal the integral of the sampled series."""
    ledger = BandwidthLedger()
    window_end = 200.0
    for start, duration, num_bytes in records:
        ledger.record(start, start + duration, num_bytes)
    samples = ledger.sample(0.0, window_end, num_bins)
    bin_width = window_end / num_bins
    integral = sum(s * bin_width for s in samples)
    total = ledger.total_bytes
    assert integral == pytest.approx(total, rel=1e-6)


@given(
    start=st.floats(0.0, 10.0),
    duration=st.floats(0.01, 10.0),
    num_bytes=st.floats(1.0, 1e12),
)
@settings(max_examples=50, deadline=None)
def test_ledger_utilization_matches_rate(start, duration, num_bytes):
    ledger = BandwidthLedger()
    ledger.record(start, start + duration, num_bytes)
    mid = start + duration / 2
    assert ledger.utilization_at(mid) == pytest.approx(num_bytes / duration)


# --- ring collectives ---------------------------------------------------------
@given(n=st.integers(2, 1024))
@settings(max_examples=50, deadline=None)
def test_ring_factors_bounded(n):
    for kind in CollectiveKind:
        factor = ring_traffic_factor(kind, n)
        assert 0.0 < factor <= 2.0
        assert ring_step_count(kind, n) >= 1


@given(n=st.integers(2, 1024))
@settings(max_examples=50, deadline=None)
def test_all_reduce_equals_gather_plus_scatter(n):
    ar = ring_traffic_factor(CollectiveKind.ALL_REDUCE, n)
    ag = ring_traffic_factor(CollectiveKind.ALL_GATHER, n)
    rs = ring_traffic_factor(CollectiveKind.REDUCE_SCATTER, n)
    assert ar == pytest.approx(ag + rs)


# --- parameter counting ---------------------------------------------------------
@given(billions=st.floats(0.3, 50.0))
@settings(max_examples=50, deadline=None)
def test_layers_for_target_is_minimal(billions):
    target = billions * 1e9
    layers = layers_for_target_params(paper_model(1), target)
    assert total_parameters(paper_model(layers)) >= target
    if layers > 1:
        assert total_parameters(paper_model(layers - 1)) < target


# --- state partitioning ----------------------------------------------------------
@given(
    params=st.floats(1e6, 1e11),
    dp=st.integers(1, 64),
    stage=st.sampled_from([ZeroStage.OPTIMIZER, ZeroStage.GRADIENTS,
                           ZeroStage.PARAMETERS]),
)
@settings(max_examples=80, deadline=None)
def test_zero_partitioning_never_exceeds_replication(params, dp, stage):
    placement = zero_states(params, stage, dp)
    assert placement.gpu_total <= 16 * params * (1 + 1e-12)
    assert placement.gpu_total >= 16 * params / dp * (1 - 1e-12)


@given(
    params=st.floats(1e6, 1e11),
    dp=st.integers(1, 64),
)
@settings(max_examples=50, deadline=None)
def test_offload_moves_but_never_loses_optimizer_bytes(params, dp):
    on_gpu = zero_states(params, ZeroStage.PARAMETERS, dp)
    offloaded = zero_states(params, ZeroStage.PARAMETERS, dp,
                            optimizer_target=OffloadTarget.NVME)
    assert offloaded.nvme_optimizer == pytest.approx(on_gpu.gpu_optimizer)
    assert offloaded.gpu_optimizer == 0.0


# --- layer chunking -----------------------------------------------------------------
@given(layers=st.integers(1, 2000), max_chunks=st.integers(1, 128))
@settings(max_examples=100, deadline=None)
def test_layer_chunks_partition(layers, max_chunks):
    chunks = layer_chunks(layers, max_chunks)
    assert len(chunks) <= max_chunks
    assert sum(count for _, count in chunks) == layers
    cursor = 0
    for start, count in chunks:
        assert start == cursor
        assert count >= 1
        cursor += count


# --- engine ------------------------------------------------------------------------
@given(delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_engine_fires_in_time_order(delays):
    engine = Engine()
    fired = []
    for delay in delays:
        engine.schedule_at(delay, lambda d=delay: fired.append(d))
    engine.run()
    assert fired == sorted(fired)
    assert engine.now == pytest.approx(max(delays))


# --- workloads -----------------------------------------------------------------------
@given(
    tokens=st.lists(st.integers(0, 1000), min_size=20, max_size=400),
    seq=st.integers(2, 20),
)
@settings(max_examples=50, deadline=None)
def test_dataset_windows_cover_prefix_exactly(tokens, seq):
    if len(tokens) < seq:
        tokens = tokens * (seq // len(tokens) + 1)
    ds = LmDataset(tokens, seq)
    flattened = [int(x) for i in range(len(ds)) for x in ds[i]]
    assert flattened == list(tokens[:len(ds) * seq])


# --- fault injection --------------------------------------------------------
_FAULT_WINDOW = (0.05, 1.05)  # covers most of the 0.7B/2-iteration run


def _fault_run(plan):
    cluster = single_node_cluster()
    metrics = run_training(cluster, zero2(), model_for_billions(0.7),
                           iterations=2, fault_plan=plan)
    return cluster, metrics


_BASELINE_TIME = None


def _baseline_time():
    global _BASELINE_TIME
    if _BASELINE_TIME is None:
        _, metrics = _fault_run(None)
        _BASELINE_TIME = metrics.execution.total_time
    return _BASELINE_TIME


@given(
    magnitude=st.floats(0.0, 0.9),
    straggler=st.booleans(),
)
@settings(max_examples=5, deadline=None)
def test_faults_never_increase_throughput(magnitude, straggler):
    """A fault can only remove capacity, so runs never get faster."""
    start, end = _FAULT_WINDOW
    if straggler:
        event = FaultEvent(target="rank0", kind=FaultKind.GPU_STRAGGLER,
                           start=start, duration=end - start,
                           magnitude=magnitude)
    else:
        event = FaultEvent(target="node0/gpu0", kind=FaultKind.LINK_DEGRADE,
                           start=start, duration=end - start,
                           magnitude=magnitude)
    _, metrics = _fault_run(FaultPlan(events=[event]))
    assert metrics.execution.total_time >= _baseline_time() - 1e-9


@given(
    kind=st.sampled_from([FaultKind.LINK_DEGRADE, FaultKind.GPU_STRAGGLER,
                          FaultKind.NVME_SLOWDOWN]),
    start=st.floats(0.0, 10.0),
    duration=st.floats(1e-6, 10.0),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=60, deadline=None)
def test_zero_magnitude_plans_materialize_empty(kind, start, duration, seed):
    """mag=0 faults are no-ops by construction, not by near-cancellation."""
    plan = FaultPlan(events=[FaultEvent(
        target="node0/gpu0", kind=kind, start=start, duration=duration,
        magnitude=0.0,
    )], seed=seed)
    assert plan.materialize() == []


@given(loss=st.floats(0.3, 0.9))
@settings(max_examples=4, deadline=None)
def test_degraded_window_bounds_ledger_rates(loss):
    """No record fully inside a degraded window moves faster than the
    degraded capacity allows (small tolerance for flow-split rounding)."""
    start, end = _FAULT_WINDOW
    event = FaultEvent(target="node0/gpu0", kind=FaultKind.LINK_DEGRADE,
                       start=start, duration=end - start, magnitude=loss)
    cluster, _ = _fault_run(FaultPlan(events=[event]))
    checked = 0
    for link in cluster.topology.links_of_device("node0/gpu0"):
        degraded_capacity = link.base_capacity_per_direction * (1.0 - loss)
        for record in link.ledger:
            span = record.end - record.start
            if span <= 1e-9 or record.start < start or record.end > end:
                continue
            checked += 1
            assert record.num_bytes / span <= degraded_capacity * 1.05
    assert checked > 0  # the fault window did see traffic


@given(words=st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=8),
    min_size=1, max_size=40,
))
@settings(max_examples=50, deadline=None)
def test_tokenizer_roundtrip_on_trained_words(words):
    text = " ".join(words)
    tokenizer = Tokenizer.train([text], vocab_size=4096)
    decoded = tokenizer.decode(tokenizer.encode(text))
    assert decoded.split() == text.lower().split()
