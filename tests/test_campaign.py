"""Campaign expansion, the content-addressed cache, and the worker pool."""

import json

import pytest

from repro.analysis.registry import code_owners
from repro.api import RunSpec
from repro.campaign import (
    CACHE_CODES,
    CampaignSpec,
    ResultCache,
    diff_reports,
    execute_job,
    load_campaign,
    payload_checksum,
    run_campaign,
)
from repro.cli import main
from repro.errors import ConfigurationError

# Cheap on purpose: fig1/table1 are analytic (no simulation) and the ddp
# run is the smallest model at two iterations.
SMALL = CampaignSpec(
    name="small",
    experiments=("fig1", "table1"),
    strategies=("ddp",),
    sizes_billions=(0.7,),
    nodes=(1,),
    iterations=2,
)


class TestCampaignSpec:
    def test_expansion_is_deterministic(self):
        ids_a = [job.job_id for job in SMALL.expand()]
        ids_b = [job.job_id for job in SMALL.expand()]
        assert ids_a == ids_b
        assert ids_a == ["experiment/fig1", "experiment/table1",
                         "run/ddp-0.7b-n1-B"]

    def test_sweep_cross_product_order(self):
        campaign = CampaignSpec(strategies=("ddp", "zero2"),
                                sizes_billions=(0.7, 1.4), nodes=(1, 2))
        ids = [job.job_id for job in campaign.expand()]
        assert ids == [
            "run/ddp-0.7b-n1-B", "run/ddp-0.7b-n2-B",
            "run/ddp-1.4b-n1-B", "run/ddp-1.4b-n2-B",
            "run/zero2-0.7b-n1-B", "run/zero2-0.7b-n2-B",
            "run/zero2-1.4b-n1-B", "run/zero2-1.4b-n2-B",
        ]

    def test_duplicate_jobs_rejected(self):
        campaign = CampaignSpec(experiments=("fig1", "fig1"))
        with pytest.raises(ConfigurationError) as err:
            campaign.expand()
        assert "duplicate" in str(err.value)

    def test_empty_campaign_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec()

    def test_strategies_without_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(strategies=("ddp",))

    def test_round_trip(self):
        assert CampaignSpec.from_dict(SMALL.to_dict()) == SMALL
        with pytest.raises(ConfigurationError):
            CampaignSpec.from_dict({"experiments": ["fig1"], "turbo": True})

    def test_load_campaign_errors_are_configuration_errors(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_campaign(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_campaign(bad)
        listy = tmp_path / "list.json"
        listy.write_text("[1, 2]")
        with pytest.raises(ConfigurationError):
            load_campaign(listy)

    def test_load_campaign_round_trips_a_saved_spec(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps(SMALL.to_dict()))
        assert load_campaign(path) == SMALL


class TestResultCache:
    def put_one(self, cache, payload=None):
        spec = RunSpec(strategy="ddp", size_billions=0.7)
        key = spec.cache_key(salt=cache.salt)
        cache.put(key, kind="run", spec=spec.to_dict(),
                  payload=payload or {"tflops": 1.5})
        return key

    def test_hit_after_put(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = self.put_one(cache, payload={"tflops": 1.5})
        assert cache.get(key) == {"tflops": 1.5}
        assert (cache.hits, cache.misses) == (1, 0)

    def test_miss_on_absent_key(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        assert cache.get("0" * 64) is None
        assert cache.misses == 1

    def test_salt_change_invalidates(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="v1")
        key = self.put_one(cache)
        bumped = ResultCache(tmp_path / "c", salt="v2")
        # Same spec hashes to a different key under the new salt...
        new_key = RunSpec(strategy="ddp",
                          size_billions=0.7).cache_key(salt="v2")
        assert new_key != key
        assert bumped.get(new_key) is None
        # ...and even the old key refuses to serve a stale-salt object.
        assert bumped.get(key) is None
        assert bumped.findings == []

    def test_corruption_is_a_cmp001_finding_and_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = self.put_one(cache)
        path = cache.path_for(key)
        obj = json.loads(path.read_text())
        obj["payload"]["tflops"] = 9999.0  # flip a bit, keep checksum
        path.write_text(json.dumps(obj))
        assert cache.get(key) is None
        assert [f.code for f in cache.findings] == ["CMP001"]
        # The runner's recompute path overwrites the damaged object.
        cache.put(key, kind="run", spec=obj["spec"],
                  payload={"tflops": 1.5})
        assert cache.get(key) == {"tflops": 1.5}

    def test_verify_reports_misfiled_and_malformed_objects(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        key = self.put_one(cache)
        # CMP002: object stored under a name that is not its key.
        wrong = cache.path_for("ab" + "0" * 62)
        wrong.parent.mkdir(parents=True, exist_ok=True)
        wrong.write_text(cache.path_for(key).read_text())
        # CMP003: not even JSON.
        junk = cache.path_for("cd" + "1" * 62)
        junk.parent.mkdir(parents=True, exist_ok=True)
        junk.write_text("garbage")
        codes = sorted(f.code for f in cache.verify())
        assert codes == ["CMP002", "CMP003"]
        assert all(code in CACHE_CODES for code in codes)

    def test_gc_removes_corrupt_and_stale_keeps_current(self, tmp_path):
        cache = ResultCache(tmp_path / "c", salt="v1")
        self.put_one(cache)
        stale = ResultCache(tmp_path / "c", salt="v0")
        stale.put("9" * 64, kind="run", spec={}, payload={"x": 1})
        junk = cache.path_for("cd" + "1" * 62)
        junk.parent.mkdir(parents=True, exist_ok=True)
        junk.write_text("garbage")
        counts = cache.gc()
        assert counts == {"removed_corrupt": 1, "removed_stale": 1,
                          "kept": 1}
        assert cache.verify() == []

    def test_checksum_is_canonical_over_key_order(self):
        assert (payload_checksum({"a": 1, "b": 2})
                == payload_checksum({"b": 2, "a": 1}))

    def test_cache_root_must_be_a_directory(self, tmp_path):
        squatter = tmp_path / "file"
        squatter.write_text("")
        with pytest.raises(ConfigurationError):
            ResultCache(squatter)

    def test_cmp_codes_are_claimed_in_the_registry(self):
        owners = code_owners()
        for code in CACHE_CODES:
            assert owners[code] == "campaign-cache"


class TestRunCampaign:
    def test_second_run_is_all_hits_and_identical(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        first = run_campaign(SMALL, workers=1, cache=cache)
        assert (first.hits, first.misses) == (0, 3)
        second = run_campaign(SMALL, workers=1, cache=cache)
        assert (second.hits, second.misses) == (3, 0)
        assert second.hit_rate == 1.0
        assert diff_reports(first, second) == []

    def test_parallel_matches_serial_fields(self, tmp_path):
        serial = run_campaign(SMALL, workers=1, cache=None)
        parallel = run_campaign(SMALL, workers=4, cache=None)
        assert [j.job_id for j in serial.jobs] == \
               [j.job_id for j in parallel.jobs]
        assert diff_reports(serial, parallel) == []

    def test_parallel_populates_the_same_cache_objects(self, tmp_path):
        cache_a = ResultCache(tmp_path / "a")
        cache_b = ResultCache(tmp_path / "b")
        run_campaign(SMALL, workers=1, cache=cache_a)
        run_campaign(SMALL, workers=4, cache=cache_b)
        names_a = sorted(p.name for p in (tmp_path / "a").rglob("*.json"))
        names_b = sorted(p.name for p in (tmp_path / "b").rglob("*.json"))
        assert names_a == names_b and len(names_a) == 3

    def test_workers_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            run_campaign(SMALL, workers=0)

    def test_progress_reports_cached_jobs(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        campaign = CampaignSpec(experiments=("fig1",))
        run_campaign(campaign, workers=1, cache=cache)
        lines = []
        run_campaign(campaign, workers=1, cache=cache,
                     progress=lines.append)
        assert any(line.startswith("cached") for line in lines)

    def test_execute_job_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            execute_job({"job_id": "x", "kind": "bake", "spec": {}})

    def test_run_job_payload_matches_direct_metrics(self):
        from repro.api import run_spec
        from repro.core.results import metrics_to_dict

        spec = RunSpec(strategy="ddp", size_billions=0.7, iterations=2)
        via_job = execute_job({"job_id": "run/x", "kind": "run",
                               "spec": spec.to_dict()})
        assert via_job == metrics_to_dict(run_spec(spec))

    def test_report_round_trip_and_lookup(self, tmp_path):
        report = run_campaign(CampaignSpec(experiments=("fig1",)),
                              workers=1, cache=None)
        saved = report.save(tmp_path / "report.json")
        payload = json.loads(saved.read_text())
        assert payload["job_count"] == 1
        assert payload["jobs"][0]["job_id"] == "experiment/fig1"
        assert report.job("experiment/fig1").cached is False
        with pytest.raises(KeyError):
            report.job("experiment/fig99")


class TestCampaignCli:
    def test_run_twice_hits_cache(self, tmp_path, capsys):
        argv = ["campaign", "run", "--experiment", "fig1",
                "--experiment", "table1",
                "--cache-dir", str(tmp_path / "c"), "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert (first["cache_hits"], first["cache_misses"]) == (0, 2)
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert (second["cache_hits"], second["cache_misses"]) == (2, 0)
        assert second["hit_rate"] == 1.0

    def test_run_from_spec_file_with_report(self, tmp_path, capsys):
        spec_path = tmp_path / "campaign.json"
        spec_path.write_text(json.dumps(
            {"name": "filed", "experiments": ["fig1"]}))
        report_path = tmp_path / "report.json"
        code = main(["campaign", "run", "--spec", str(spec_path),
                     "--no-cache", "--report", str(report_path)])
        assert code == 0
        assert "campaign 'filed'" in capsys.readouterr().out
        assert json.loads(report_path.read_text())["job_count"] == 1

    def test_missing_spec_file_renders_clean_error(self, tmp_path, capsys):
        code = main(["campaign", "run", "--spec",
                     str(tmp_path / "absent.json"), "--no-cache"])
        assert code == 2
        err = capsys.readouterr().err
        assert "error" in err and "Traceback" not in err

    def test_bad_cache_dir_renders_clean_error(self, tmp_path, capsys):
        squatter = tmp_path / "file"
        squatter.write_text("")
        code = main(["campaign", "run", "--experiment", "fig1",
                     "--cache-dir", str(squatter)])
        assert code == 2
        err = capsys.readouterr().err
        assert "error" in err and "Traceback" not in err

    def test_status_flags_corruption(self, tmp_path, capsys):
        cache_dir = tmp_path / "c"
        assert main(["campaign", "run", "--experiment", "fig1",
                     "--cache-dir", str(cache_dir)]) == 0
        capsys.readouterr()
        assert main(["campaign", "status", "--cache-dir",
                     str(cache_dir)]) == 0
        assert "integrity: ok" in capsys.readouterr().out
        victim = next((cache_dir / "objects").glob("*/*.json"))
        victim.write_text("garbage")
        assert main(["campaign", "status", "--cache-dir",
                     str(cache_dir)]) == 1
        assert "CMP003" in capsys.readouterr().out

    def test_gc_drops_corrupt_objects(self, tmp_path, capsys):
        cache_dir = tmp_path / "c"
        assert main(["campaign", "run", "--experiment", "fig1",
                     "--cache-dir", str(cache_dir)]) == 0
        victim = next((cache_dir / "objects").glob("*/*.json"))
        victim.write_text("garbage")
        capsys.readouterr()
        assert main(["campaign", "gc", "--cache-dir",
                     str(cache_dir)]) == 0
        assert "1 corrupt" in capsys.readouterr().out
        assert main(["campaign", "status", "--cache-dir",
                     str(cache_dir)]) == 0
