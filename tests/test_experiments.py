"""Experiment registry and the light experiment modules."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    EXPERIMENTS,
    PAPER_EXPERIMENTS,
    run_experiment,
)
from repro.experiments.common import (
    ALL_STRATEGIES,
    CORE_STRATEGIES,
    ExperimentResult,
    make_strategy,
)


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        for required in ("fig1", "fig3", "fig4", "fig5", "fig6", "fig7",
                         "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
                         "fig14_table6", "table1", "table3", "table4",
                         "table5"):
            assert required in EXPERIMENTS

    def test_ablations_registered(self):
        for ablation in ("ablation_serdes", "ablation_overlap",
                         "ablation_nvme", "ablation_buffers"):
            assert ablation in EXPERIMENTS

    def test_paper_order_subset_of_registry(self):
        assert set(PAPER_EXPERIMENTS) <= set(EXPERIMENTS)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")


class TestStrategyFactories:
    def test_core_strategies(self):
        assert set(CORE_STRATEGIES) == {"ddp", "megatron", "zero1", "zero2",
                                        "zero3"}

    def test_factories_produce_fresh_instances(self):
        a = make_strategy("zero2")
        b = make_strategy("zero2")
        assert a is not b
        assert a.name == b.name == "zero2"

    def test_all_strategies_nameable(self):
        for name in ALL_STRATEGIES:
            assert make_strategy(name).name == name


class TestExperimentResult:
    def test_row_by(self):
        result = ExperimentResult("x", "t", rows=[
            {"strategy": "ddp", "value": 1},
            {"strategy": "zero2", "value": 2},
        ])
        assert result.row_by(strategy="zero2")["value"] == 2
        with pytest.raises(KeyError):
            result.row_by(strategy="nope")


class TestLightExperiments:
    """Fast experiments run inside the unit suite; the heavy ones are
    exercised by the benchmark harness."""

    def test_fig1(self):
        result = run_experiment("fig1")
        growth = result.row_by(series="growth_factor",
                               name="model 2018-2020")
        assert growth["value"] > 1000  # the paper's 1000x claim
        memory = result.row_by(series="growth_factor",
                               name="gpu memory 2017-2020")
        assert memory["value"] == pytest.approx(5.0)

    def test_table1_matches_paper_matrix(self):
        result = run_experiment("table1")
        stage3 = result.row_by(stage=3)
        assert stage3["parameter_nvme"]
        stage1 = result.row_by(stage=1)
        assert stage1["optimizer_cpu"] and not stage1["optimizer_nvme"]

    def test_table3_inventory(self):
        result = run_experiment("table3")
        nvlink = result.row_by(interface="NVLink")
        assert (nvlink["built_paper_convention_gbps"]
                == pytest.approx(nvlink["paper_aggregate_gbps"], rel=0.01))
        xgmi = result.row_by(interface="xGMI")
        assert xgmi["built_aggregate_gbps"] == pytest.approx(
            xgmi["paper_aggregate_gbps"], rel=0.01)

    def test_fig3_bounds(self):
        result = run_experiment("fig3")
        small = [r for r in result.rows if r["message_bytes"] < 64 * 1024]
        same = [r["latency_us"] for r in small
                if r["placement"] == "same_socket"
                and r["verb"] != "rdma_read"]
        cross = [r["latency_us"] for r in small
                 if r["placement"] == "cross_socket"
                 and r["verb"] != "rdma_read"]
        assert max(same) < 6.5
        assert max(cross) < 40.0

    def test_fig4_fractions(self):
        result = run_experiment("fig4")
        for row in result.rows:
            assert row["attained_fraction"] == pytest.approx(
                row["paper_fraction"], abs=0.09)

    def test_fig6_sizes_within_fifteen_percent(self):
        result = run_experiment("fig6")
        for row in result.rows:
            assert row["achieved_b"] == pytest.approx(row["paper_b"],
                                                      rel=0.15)

    def test_rendered_output_nonempty(self):
        for eid in ("fig1", "table1", "table3", "fig3", "fig4", "fig6"):
            assert run_experiment(eid).rendered.strip()
