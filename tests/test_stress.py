"""Stress tests: Fig. 3 latency and Fig. 4 bandwidth reproduction."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import dual_node_cluster, single_node_cluster
from repro.hardware.link import LinkClass
from repro.stress import (
    MESSAGE_SIZES,
    SocketPlacement,
    TestKind as StressTestKind,
    Verb,
    full_stress_suite,
    latency_sweep,
    measure_latency,
    run_stress_test,
)


@pytest.fixture(scope="module")
def cluster():
    return dual_node_cluster()


class TestLatency:
    def test_same_socket_under_six_microseconds(self, cluster):
        for verb in (Verb.SEND, Verb.RDMA_WRITE):
            sample = measure_latency(cluster, verb,
                                     SocketPlacement.SAME_SOCKET, 1024)
            assert sample.latency_us < 6.5

    def test_cross_socket_under_forty_microseconds(self, cluster):
        for verb in (Verb.SEND, Verb.RDMA_WRITE):
            sample = measure_latency(cluster, verb,
                                     SocketPlacement.CROSS_SOCKET, 1024)
            assert sample.latency_us < 40.0

    def test_cross_socket_is_several_times_same_socket(self, cluster):
        same = measure_latency(cluster, Verb.SEND,
                               SocketPlacement.SAME_SOCKET, 1024)
        cross = measure_latency(cluster, Verb.SEND,
                                SocketPlacement.CROSS_SOCKET, 1024)
        assert cross.latency / same.latency > 4.0

    def test_rdma_read_pays_round_trip(self, cluster):
        read = measure_latency(cluster, Verb.RDMA_READ,
                               SocketPlacement.SAME_SOCKET, 1024)
        write = measure_latency(cluster, Verb.RDMA_WRITE,
                                SocketPlacement.SAME_SOCKET, 1024)
        assert read.latency > write.latency

    def test_latency_monotone_in_message_size(self, cluster):
        previous = 0.0
        for size in (1024, 64 * 1024, 1024 * 1024, 8 * 1024 * 1024):
            sample = measure_latency(cluster, Verb.SEND,
                                     SocketPlacement.SAME_SOCKET, size)
            assert sample.latency > previous
            previous = sample.latency

    def test_large_messages_dominated_by_bandwidth(self, cluster):
        sample = measure_latency(cluster, Verb.SEND,
                                 SocketPlacement.SAME_SOCKET,
                                 8 * 1024 * 1024)
        # 8 MB at ~23 GB/s is ~360 us, far above the base latency.
        assert sample.latency_us > 100

    def test_sweep_covers_all_cells(self, cluster):
        sweep = latency_sweep(cluster, sizes=MESSAGE_SIZES[:5])
        assert len(sweep) == len(Verb) * len(SocketPlacement)
        for samples in sweep.values():
            assert len(samples) == 5

    def test_single_node_rejected(self):
        with pytest.raises(ConfigurationError):
            measure_latency(single_node_cluster(), Verb.SEND,
                            SocketPlacement.SAME_SOCKET, 1024)

    def test_invalid_size_rejected(self, cluster):
        with pytest.raises(ConfigurationError):
            measure_latency(cluster, Verb.SEND,
                            SocketPlacement.SAME_SOCKET, 0)


class TestBandwidthStress:
    def test_fig4_attained_fractions(self, cluster):
        suite = full_stress_suite(cluster, duration=2.0)
        fractions = {
            key: result.attained_fraction()
            for key, result in suite.items()
        }
        same_cpu = fractions[(StressTestKind.CPU_ROCE, SocketPlacement.SAME_SOCKET)]
        cross_cpu = fractions[(StressTestKind.CPU_ROCE, SocketPlacement.CROSS_SOCKET)]
        same_gpu = fractions[(StressTestKind.GPU_ROCE, SocketPlacement.SAME_SOCKET)]
        cross_gpu = fractions[(StressTestKind.GPU_ROCE, SocketPlacement.CROSS_SOCKET)]
        assert same_cpu == pytest.approx(0.93, abs=0.03)   # paper 93 %
        assert cross_cpu == pytest.approx(0.47, abs=0.08)  # paper 47 %
        assert same_gpu == pytest.approx(0.52, abs=0.08)   # paper 52 %
        assert cross_gpu == pytest.approx(0.42, abs=0.08)  # paper 42 %
        assert same_cpu > cross_cpu > cross_gpu

    def test_gpu_roce_bypasses_dram(self, cluster):
        result = run_stress_test(cluster, StressTestKind.GPU_ROCE,
                                 SocketPlacement.SAME_SOCKET, duration=1.0)
        # GPUDirect RDMA: the paper observes no DRAM traffic (Fig. 4-b).
        assert result.stats[LinkClass.DRAM].average == 0.0
        assert result.stats[LinkClass.PCIE_GPU].average > 0.0

    def test_cpu_roce_touches_dram(self, cluster):
        result = run_stress_test(cluster, StressTestKind.CPU_ROCE,
                                 SocketPlacement.SAME_SOCKET, duration=1.0)
        assert result.stats[LinkClass.DRAM].average > 0.0

    def test_cross_socket_loads_xgmi(self, cluster):
        result = run_stress_test(cluster, StressTestKind.CPU_ROCE,
                                 SocketPlacement.CROSS_SOCKET, duration=1.0)
        assert result.stats[LinkClass.XGMI].average > 0.0

    def test_single_node_rejected(self):
        with pytest.raises(ConfigurationError):
            run_stress_test(single_node_cluster(), StressTestKind.CPU_ROCE,
                            SocketPlacement.SAME_SOCKET)

    def test_bad_duration_rejected(self, cluster):
        with pytest.raises(ConfigurationError):
            run_stress_test(cluster, StressTestKind.CPU_ROCE,
                            SocketPlacement.SAME_SOCKET, duration=0.0)
