"""Schedule IR: step validation, rendezvous consistency, layer chunking."""

import pytest

from repro.collectives import CollectiveKind
from repro.errors import ConfigurationError
from repro.parallel.schedule import (
    CollectiveStep,
    CommunicatorSpec,
    ComputeStep,
    CpuWorkStep,
    HostTransferStep,
    IdleStep,
    IterationSchedule,
    Location,
    layer_chunks,
    uniform_schedule,
)
from repro.runtime.kernels import KernelKind


class TestSteps:
    def test_compute_step_rejects_negative_duration(self):
        with pytest.raises(ConfigurationError):
            ComputeStep(KernelKind.GEMM, -1.0)

    def test_idle_step_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            IdleStep(-0.1)

    def test_collective_kernel_kind_mapping(self):
        step = CollectiveStep("k", "dp", CollectiveKind.ALL_REDUCE, 1.0)
        assert step.kernel_kind is KernelKind.NCCL_ALL_REDUCE
        step = CollectiveStep("k", "dp", CollectiveKind.REDUCE_SCATTER, 1.0)
        assert step.kernel_kind is KernelKind.NCCL_REDUCE

    def test_collective_validation(self):
        with pytest.raises(ConfigurationError):
            CollectiveStep("k", "dp", CollectiveKind.REDUCE, -1.0)
        with pytest.raises(ConfigurationError):
            CollectiveStep("k", "dp", CollectiveKind.REDUCE, 1.0, op_count=0)

    def test_host_transfer_validation(self):
        with pytest.raises(ConfigurationError):
            HostTransferStep("t", Location.GPU, Location.GPU, 1.0)
        with pytest.raises(ConfigurationError):
            HostTransferStep("t", Location.GPU, Location.DRAM, -1.0)

    def test_cpu_work_validation(self):
        with pytest.raises(ConfigurationError):
            CpuWorkStep("adam", -1.0)


class TestCommunicatorSpec:
    def test_group_of(self):
        spec = CommunicatorSpec("dp", [[0, 1], [2, 3]])
        assert spec.group_of(0) == (0, [0, 1])
        assert spec.group_of(3) == (1, [2, 3])

    def test_group_of_missing_rank(self):
        spec = CommunicatorSpec("dp", [[0, 1]])
        with pytest.raises(ConfigurationError):
            spec.group_of(7)


class TestScheduleValidation:
    def test_uniform_schedule_validates(self):
        ranks = [0, 1]
        steps = [CollectiveStep("ar", "dp", CollectiveKind.ALL_REDUCE, 1.0)]
        schedule = uniform_schedule(
            ranks, steps, {"dp": CommunicatorSpec("dp", [ranks])})
        schedule.validate()

    def test_unknown_communicator_rejected(self):
        schedule = uniform_schedule(
            [0], [CollectiveStep("ar", "mystery", CollectiveKind.REDUCE, 1.0)],
            {})
        with pytest.raises(ConfigurationError):
            schedule.validate()

    def test_partial_rendezvous_rejected(self):
        steps0 = [CollectiveStep("ar", "dp", CollectiveKind.ALL_REDUCE, 1.0)]
        schedule = IterationSchedule(
            steps_by_rank={0: steps0, 1: []},
            communicators={"dp": CommunicatorSpec("dp", [[0, 1]])},
        )
        with pytest.raises(ConfigurationError):
            schedule.validate()

    def test_ranks_property_sorted(self):
        schedule = IterationSchedule(steps_by_rank={3: [], 1: [], 2: []})
        assert schedule.ranks == [1, 2, 3]


class TestLayerChunks:
    def test_few_layers_stay_per_layer(self):
        chunks = layer_chunks(26, max_chunks=48)
        assert len(chunks) == 26
        assert all(count == 1 for _, count in chunks)

    def test_deep_models_are_fused(self):
        chunks = layer_chunks(660, max_chunks=48)
        assert len(chunks) == 48

    def test_chunks_partition_exactly(self):
        for layers in (1, 7, 26, 48, 49, 100, 660):
            chunks = layer_chunks(layers)
            assert sum(count for _, count in chunks) == layers
            cursor = 0
            for start, count in chunks:
                assert start == cursor
                cursor += count

    def test_chunk_sizes_balanced(self):
        chunks = layer_chunks(100, max_chunks=48)
        sizes = {count for _, count in chunks}
        assert max(sizes) - min(sizes) <= 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            layer_chunks(0)
        with pytest.raises(ConfigurationError):
            layer_chunks(10, max_chunks=0)
