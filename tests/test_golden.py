"""Golden-trace regression harness.

Committed JSON snapshots in ``tests/golden/`` pin the headline metrics
of the paper's key experiments (Fig. 5 timeline, Fig. 6 max model size,
Fig. 7 throughput, Fig. 9/10 communication patterns, Fig. 11 offload
throughput).  Any change that moves a
number — an intentional calibration change or an accidental regression —
fails here with a readable field-level diff, also written to
``tests/golden/diffs/<id>.diff`` so CI can upload it as an artifact.

After an *intentional* change, refresh the snapshots with::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden

Floats are rounded to :data:`SIG_FIGS` significant figures on both sides
of the comparison, absorbing harmless last-ulp reorderings while still
catching any drift a reader of the paper's tables would notice.
"""

import json
import math
from pathlib import Path

import pytest

from repro.experiments.registry import run_experiment
from repro.trace.diff import summarize

GOLDEN_DIR = Path(__file__).parent / "golden"
DIFF_DIR = GOLDEN_DIR / "diffs"

#: Experiments whose quick-mode rows are pinned.
EXPERIMENT_IDS = ("fig5", "fig6", "fig7", "fig9", "fig10", "fig11")

SIG_FIGS = 6


def round_sig(value, digits=SIG_FIGS):
    if value == 0 or not math.isfinite(value):
        return value
    return round(value, digits - 1 - int(math.floor(math.log10(abs(value)))))


def sanitize(value):
    """JSON-stable form: floats rounded, containers recursed, rest as-is."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return round_sig(value)
    if isinstance(value, int):
        return value
    if isinstance(value, str):
        return value
    if isinstance(value, dict):
        return {str(k): sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [sanitize(v) for v in value]
    return str(value)


def snapshot(experiment_id):
    result = run_experiment(experiment_id, quick=True)
    return {
        "experiment": experiment_id,
        "title": result.title,
        "rows": [sanitize(row) for row in result.rows],
    }


def diff_snapshots(golden, current):
    """Human-readable field-level differences, [] when identical."""
    lines = []
    for key in ("experiment", "title"):
        if golden.get(key) != current.get(key):
            lines.append(
                f"{key}: golden={golden.get(key)!r} "
                f"current={current.get(key)!r}"
            )
    golden_rows = golden.get("rows", [])
    current_rows = current.get("rows", [])
    if len(golden_rows) != len(current_rows):
        lines.append(
            f"row count: golden={len(golden_rows)} "
            f"current={len(current_rows)}"
        )
    for index, (g_row, c_row) in enumerate(zip(golden_rows, current_rows)):
        for key in sorted(set(g_row) | set(c_row)):
            g_val = g_row.get(key, "<missing>")
            c_val = c_row.get(key, "<missing>")
            if g_val != c_val:
                lines.append(
                    f"row {index} [{key}]: golden={g_val!r} "
                    f"current={c_val!r}"
                )
    return lines


@pytest.mark.parametrize("experiment_id", EXPERIMENT_IDS)
def test_golden_metrics(experiment_id, request):
    current = snapshot(experiment_id)
    path = GOLDEN_DIR / f"{experiment_id}.json"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden snapshot {path.name} rewritten")
    if not path.exists():
        pytest.fail(
            f"missing golden snapshot {path}; create it with "
            f"pytest tests/test_golden.py --update-golden"
        )
    golden = json.loads(path.read_text())
    drift = diff_snapshots(golden, current)
    if drift:
        DIFF_DIR.mkdir(exist_ok=True)
        diff_path = DIFF_DIR / f"{experiment_id}.diff"
        diff_path.write_text("\n".join(drift) + "\n")
        pytest.fail(
            f"golden drift in {experiment_id} "
            f"({len(drift)} field(s); full diff at {diff_path}):\n"
            + "\n".join(drift[:20])
        )


def test_fig5_ascii_render_byte_identical(request):
    """The Fig. 5 rendering is pinned byte-for-byte, not just metric-wise.

    The ASCII renderer moved from ``repro.telemetry.timeline`` into
    ``repro.trace.ascii``; this snapshot proves the refactor (and any
    future one) changes nothing in the output.
    """
    rendered = run_experiment("fig5", quick=True).rendered
    path = GOLDEN_DIR / "fig5_render.txt"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(rendered)
        pytest.skip(f"golden render {path.name} rewritten")
    if not path.exists():
        pytest.fail(f"missing golden render {path}; create it with "
                    f"pytest tests/test_golden.py --update-golden")
    assert rendered == path.read_text()


def test_golden_trace_summary(request, traced_ddp):
    """The traced DDP run's summary table is pinned like the experiments."""
    _, metrics = traced_ddp
    current = {key: sanitize(value)
               for key, value in summarize(metrics.trace).items()}
    path = GOLDEN_DIR / "trace_ddp_summary.json"
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"golden trace summary {path.name} rewritten")
    if not path.exists():
        pytest.fail(f"missing golden trace summary {path}; create it with "
                    f"pytest tests/test_golden.py --update-golden")
    golden = json.loads(path.read_text())
    drift = []
    for key in sorted(set(golden) | set(current)):
        g_val = golden.get(key, "<missing>")
        c_val = current.get(key, "<missing>")
        if g_val != c_val:
            drift.append(f"[{key}]: golden={g_val!r} current={c_val!r}")
    if drift:
        DIFF_DIR.mkdir(exist_ok=True)
        diff_path = DIFF_DIR / "trace_ddp_summary.diff"
        diff_path.write_text("\n".join(drift) + "\n")
        pytest.fail(
            f"golden trace-summary drift ({len(drift)} field(s); full "
            f"diff at {diff_path}):\n" + "\n".join(drift[:20])
        )


class TestHarnessSelfTest:
    """The harness must demonstrably fail when a metric is perturbed."""

    GOLDEN = {
        "experiment": "x", "title": "t",
        "rows": [{"strategy": "ddp", "tflops": 123.456}],
    }

    def test_identical_snapshots_produce_no_diff(self):
        assert diff_snapshots(self.GOLDEN, json.loads(json.dumps(self.GOLDEN))) == []

    def test_perturbed_metric_is_detected(self):
        tweaked = json.loads(json.dumps(self.GOLDEN))
        tweaked["rows"][0]["tflops"] = 123.457
        drift = diff_snapshots(self.GOLDEN, tweaked)
        assert drift and "tflops" in drift[0]

    def test_missing_and_extra_rows_are_detected(self):
        assert diff_snapshots(self.GOLDEN, {**self.GOLDEN, "rows": []})
        extra = json.loads(json.dumps(self.GOLDEN))
        extra["rows"].append({"strategy": "zero3", "tflops": 1.0})
        assert diff_snapshots(self.GOLDEN, extra)

    def test_committed_snapshot_perturbation_fails(self):
        """End to end: a committed snapshot with one nudged metric drifts."""
        path = GOLDEN_DIR / "fig6.json"
        if not path.exists():
            pytest.skip("fig6 golden snapshot not created yet")
        golden = json.loads(path.read_text())
        tweaked = json.loads(path.read_text())
        row = tweaked["rows"][0]
        for key, value in row.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                row[key] = value + 1
                break
        else:
            pytest.skip("fig6 snapshot has no numeric field in row 0")
        assert diff_snapshots(golden, tweaked)

    def test_sub_sigfig_jitter_is_absorbed(self):
        wiggled = json.loads(json.dumps(self.GOLDEN))
        wiggled["rows"][0]["tflops"] = sanitize(123.456 * (1 + 1e-12))
        assert diff_snapshots(self.GOLDEN, wiggled) == []
