"""Bandwidth monitor: sampling, per-class grouping, Table IV stats."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware import dual_node_cluster, single_node_cluster
from repro.hardware.link import LinkClass
from repro.telemetry.bandwidth import BandwidthMonitor, BandwidthStats


class TestStats:
    def test_from_samples(self):
        stats = BandwidthStats.from_samples([1e9, 2e9, 3e9, 4e9])
        assert stats.average == pytest.approx(2.5e9)
        assert stats.peak == pytest.approx(4e9)
        assert stats.average <= stats.p90 <= stats.peak

    def test_empty_samples(self):
        stats = BandwidthStats.from_samples([])
        assert stats.average == stats.p90 == stats.peak == 0.0

    def test_gbps_properties(self):
        stats = BandwidthStats(2e9, 3e9, 4e9)
        assert stats.average_gbps == pytest.approx(2.0)
        assert stats.p90_gbps == pytest.approx(3.0)
        assert stats.peak_gbps == pytest.approx(4.0)


class TestMonitor:
    @pytest.fixture()
    def cluster(self):
        c = single_node_cluster()
        c.reset()
        return c

    def test_series_aggregates_class_per_node(self, cluster):
        monitor = BandwidthMonitor(cluster, sample_period=0.1)
        # Put 1 GB/s on two different NVLink pairs for one second.
        for pair in (("node0/gpu0", "node0/gpu1"),
                     ("node0/gpu2", "node0/gpu3")):
            route = cluster.topology.route(*pair)
            route.record(0.0, 1.0, 1e9)
        series = monitor.series(LinkClass.NVLINK, 0.0, 1.0)
        assert len(series) == 10
        # NVLink counters are per GPU port: each wire byte counted twice.
        assert series[0] == pytest.approx(2 * 2e9)

    def test_node_filter(self):
        cluster = dual_node_cluster()
        cluster.reset()
        route = cluster.topology.route("node1/gpu0", "node1/gpu1")
        route.record(0.0, 1.0, 5e9)
        monitor = BandwidthMonitor(cluster)
        node0 = monitor.stats(LinkClass.NVLINK, 0.0, 1.0, node_index=0)
        node1 = monitor.stats(LinkClass.NVLINK, 0.0, 1.0, node_index=1)
        assert node0.average == 0.0
        assert node1.average == pytest.approx(2 * 5e9)  # port counting

    def test_table_covers_all_classes(self, cluster):
        monitor = BandwidthMonitor(cluster)
        table = monitor.table(0.0, 1.0)
        assert set(table) == {
            LinkClass.DRAM, LinkClass.XGMI, LinkClass.PCIE_GPU,
            LinkClass.PCIE_NVME, LinkClass.PCIE_NIC, LinkClass.NVLINK,
            LinkClass.ROCE,
        }

    def test_validation(self, cluster):
        with pytest.raises(ConfigurationError):
            BandwidthMonitor(cluster, sample_period=0.0)
        monitor = BandwidthMonitor(cluster)
        with pytest.raises(ConfigurationError):
            monitor.series(LinkClass.DRAM, 1.0, 1.0)

    def test_roce_links_attributed_to_nic_node(self):
        cluster = dual_node_cluster()
        monitor = BandwidthMonitor(cluster)
        links = monitor.links_for(LinkClass.ROCE, node_index=0)
        assert len(links) == 2
        assert all(link.name.startswith("node0/") for link in links)
