"""NVMe drive cache model and RAID0 volumes."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.nvme import NvmeDrive, NvmeSpec, Raid0Volume


def small_spec(**overrides):
    base = dict(dram_cache_bytes=1e9, cache_write_bandwidth=4e9,
                nand_write_bandwidth=1e9, cache_read_bandwidth=6e9,
                nand_read_bandwidth=3e9, command_latency=0.0)
    base.update(overrides)
    return NvmeSpec(**base)


class TestCacheRegimes:
    def test_burst_within_cache_is_fast(self):
        drive = NvmeDrive("d", small_spec())
        t = drive.write_time(1e9)  # exactly the cache size
        assert t == pytest.approx(1e9 / 4e9)

    def test_overflow_hits_nand_speed(self):
        drive = NvmeDrive("d", small_spec())
        t = drive.write_time(3e9)
        expected = 1e9 / 4e9 + 2e9 / 1e9
        assert t == pytest.approx(expected)

    def test_cache_fill_persists_across_bursts(self):
        drive = NvmeDrive("d", small_spec())
        drive.write_time(1e9)             # fills the cache
        t = drive.write_time(1e9)          # all NAND now
        assert t == pytest.approx(1.0)

    def test_drain_restores_headroom(self):
        drive = NvmeDrive("d", small_spec())
        drive.write_time(1e9)
        drive.drain_cache(1.0)  # 1 GB drains at 1 GB/s NAND
        t = drive.write_time(1e9)
        assert t == pytest.approx(0.25)

    def test_reset_cache(self):
        drive = NvmeDrive("d", small_spec())
        drive.write_time(1e9)
        drive.reset_cache()
        assert drive.write_time(1e9) == pytest.approx(0.25)

    def test_read_cached_fraction(self):
        drive = NvmeDrive("d", small_spec())
        t_cold = drive.read_time(3e9)
        t_warm = drive.read_time(3e9, cached_fraction=1.0)
        assert t_warm < t_cold

    def test_command_latency_floor(self):
        drive = NvmeDrive("d", small_spec(command_latency=90e-6))
        assert drive.write_time(1.0) >= 90e-6

    def test_negative_bytes_rejected(self):
        drive = NvmeDrive("d", small_spec())
        with pytest.raises(ConfigurationError):
            drive.write_time(-1.0)
        with pytest.raises(ConfigurationError):
            drive.read_time(-1.0)

    def test_bad_cached_fraction_rejected(self):
        drive = NvmeDrive("d", small_spec())
        with pytest.raises(ConfigurationError):
            drive.read_time(1.0, cached_fraction=1.5)


class TestSustainedBandwidth:
    def test_pure_read_and_write(self):
        drive = NvmeDrive("d", small_spec())
        assert drive.sustained_bandwidth(read_fraction=1.0) == pytest.approx(3e9)
        assert drive.sustained_bandwidth(read_fraction=0.0) == pytest.approx(1e9)

    def test_mixed_is_harmonic(self):
        drive = NvmeDrive("d", small_spec())
        mixed = drive.sustained_bandwidth(read_fraction=0.5)
        assert mixed == pytest.approx(1.0 / (0.5 / 3e9 + 0.5 / 1e9))

    def test_mixed_between_extremes(self):
        drive = NvmeDrive("d", small_spec())
        mixed = drive.sustained_bandwidth(read_fraction=0.5)
        assert 1e9 < mixed < 3e9


class TestRaid0:
    def make_volume(self, n, sockets=None):
        sockets = sockets or [1] * n
        drives = [NvmeDrive(f"d{i}", small_spec(), socket_index=sockets[i])
                  for i in range(n)]
        return Raid0Volume("md0", drives)

    def test_bandwidth_aggregates(self):
        vol = self.make_volume(2)
        assert vol.sustained_bandwidth(read_fraction=1.0) == pytest.approx(6e9)

    def test_striped_write_time_halves(self):
        one = self.make_volume(1)
        two = self.make_volume(2)
        payload = 4e9
        assert two.write_time(payload) < one.write_time(payload)

    def test_capacity(self):
        vol = self.make_volume(2)
        assert vol.capacity_bytes == pytest.approx(2 * 3.2e12)

    def test_socket_span_detection(self):
        local = self.make_volume(2, sockets=[1, 1])
        spanning = self.make_volume(2, sockets=[0, 1])
        assert not local.spans_sockets
        assert spanning.spans_sockets

    def test_empty_volume_rejected(self):
        with pytest.raises(ConfigurationError):
            Raid0Volume("md0", [])

    def test_reset_clears_member_caches(self):
        vol = self.make_volume(2)
        vol.write_time(4e9)
        vol.reset()
        # After reset the first GB per member is cache-speed again.
        assert vol.write_time(2e9) == pytest.approx(0.25)


class TestSpecValidation:
    def test_rejects_nonpositive_bandwidth(self):
        with pytest.raises(ConfigurationError):
            small_spec(nand_write_bandwidth=0.0)

    def test_rejects_negative_capacity(self):
        with pytest.raises(ConfigurationError):
            small_spec(capacity_bytes=-1.0)
