"""CPU, GPU, and NIC device models."""

import pytest

from repro.errors import ConfigurationError
from repro.hardware.cpu import (
    CPU_ADAM_BYTES_PER_PARAM,
    CpuSpec,
    cpu_adam_step_time,
    make_cpu,
    make_dram,
)
from repro.hardware.devices import DeviceKind
from repro.hardware.gpu import GpuSpec, make_gpu
from repro.hardware.nic import NicSpec, SwitchSpec, make_nic, make_switch


class TestCpuSpec:
    def test_dram_bandwidth_aggregates_channels(self):
        spec = CpuSpec()
        assert spec.dram_bandwidth == pytest.approx(8 * 25.6e9)

    def test_effective_bandwidth_applies_efficiency(self):
        spec = CpuSpec()
        assert spec.effective_dram_bandwidth < spec.dram_bandwidth

    def test_peak_flops(self):
        spec = CpuSpec()
        assert spec.peak_flops == pytest.approx(64 * 32e9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CpuSpec(cores=0)
        with pytest.raises(ConfigurationError):
            CpuSpec(dram_efficiency=0.0)


class TestCpuAdam:
    def test_time_scales_with_params(self):
        spec = CpuSpec()
        t1 = cpu_adam_step_time(1e9, spec)
        t2 = cpu_adam_step_time(2e9, spec)
        assert t2 == pytest.approx(2 * t1)

    def test_dram_bound_for_typical_sizes(self):
        spec = CpuSpec()
        t = cpu_adam_step_time(1e9, spec)
        dram_bound = 1e9 * CPU_ADAM_BYTES_PER_PARAM / spec.effective_dram_bandwidth
        assert t == pytest.approx(dram_bound)

    def test_zero_params_is_zero_time(self):
        assert cpu_adam_step_time(0.0, CpuSpec()) == 0.0

    def test_negative_params_rejected(self):
        with pytest.raises(ConfigurationError):
            cpu_adam_step_time(-1.0, CpuSpec())


class TestCpuDramDevices:
    def test_cpu_hub_has_no_memory(self):
        cpu = make_cpu("n/cpu0", node_index=0, socket_index=0)
        assert cpu.kind is DeviceKind.CPU
        assert cpu.memory is None

    def test_dram_holds_socket_capacity(self):
        dram = make_dram("n/dram0", node_index=0, socket_index=0)
        assert dram.kind is DeviceKind.DRAM
        assert dram.memory.capacity_bytes == pytest.approx(512e9)


class TestGpu:
    def test_usable_memory_excludes_reservation(self):
        spec = GpuSpec()
        assert spec.usable_memory_bytes == pytest.approx(40e9 - 2.5e9)

    def test_a100_peak(self):
        assert GpuSpec().peak_fp16_flops == pytest.approx(312e12)

    def test_make_gpu_attaches_pool_and_spec(self):
        gpu = make_gpu("n/gpu0", node_index=0, socket_index=0)
        assert gpu.memory.capacity_bytes == pytest.approx(37.5e9)
        assert gpu.spec.nvlink_ports == 12

    def test_reservation_cannot_exceed_capacity(self):
        with pytest.raises(ConfigurationError):
            GpuSpec(memory_bytes=2e9, reserved_bytes=3e9)


class TestNicAndSwitch:
    def test_nic_wire_rate(self):
        spec = NicSpec()
        assert spec.wire_bandwidth_per_direction == pytest.approx(25e9)

    def test_nic_validation(self):
        with pytest.raises(ConfigurationError):
            NicSpec(efficiency=0.0)

    def test_make_nic(self):
        nic = make_nic("n/nic0", node_index=0, socket_index=0)
        assert nic.kind is DeviceKind.NIC
        assert nic.spec.supports_gpudirect

    def test_switch(self):
        switch = make_switch("switch0")
        assert switch.kind is DeviceKind.SWITCH
        assert switch.spec.ports == 32

    def test_switch_validation(self):
        with pytest.raises(ConfigurationError):
            SwitchSpec(ports=0)
