"""Unit-conversion helpers."""

import pytest

from repro import units


def test_data_size_constants():
    assert units.KB == 1e3
    assert units.MB == 1e6
    assert units.GB == 1e9
    assert units.TB == 1e12


def test_binary_size_constants():
    assert units.KIB == 1024
    assert units.MIB == 1024 ** 2
    assert units.GIB == 1024 ** 3
    assert units.TIB == 1024 ** 4


def test_gbps_roundtrip():
    assert units.to_gbps(units.gbps(25.0)) == pytest.approx(25.0)


def test_tflops_roundtrip():
    assert units.to_tflops(units.tflops(312.0)) == pytest.approx(312.0)


def test_gib_is_binary():
    assert units.gib(1) == 2 ** 30


def test_to_gb_is_decimal():
    assert units.to_gb(40e9) == pytest.approx(40.0)


def test_usec_roundtrip():
    assert units.to_usec(units.usec(6.0)) == pytest.approx(6.0)


def test_billion_roundtrip():
    assert units.to_billion(units.billion(1.4)) == pytest.approx(1.4)


def test_datatype_sizes():
    assert units.FP16_BYTES == 2
    assert units.FP32_BYTES == 4
    assert units.ADAM_STATE_BYTES_FP32 == 12


def test_adam_state_is_three_fp32_tensors():
    assert units.ADAM_STATE_BYTES_FP32 == 3 * units.FP32_BYTES


def test_gb_vs_gib_boundary():
    # The classic 7 %-per-power-of-1000 gap the DIM003 check guards.
    assert units.GIB / units.GB == pytest.approx(1.073741824)
    assert units.gib(40) > 40 * units.GB
    # A "40 GB" A100 marketing capacity is NOT 40 GiB.
    assert units.gib(40) - 40 * units.GB == pytest.approx(2.94967296e9)


def test_gbps_matches_decimal_gb():
    # Bandwidth "GBps" figures in the paper are decimal: Table III's
    # 32 GBps PCIe 4.0 x16 is 32e9 B/s, not 32 * 2**30.
    assert units.GBPS == units.GB
    assert units.gbps(1.0) == 1e9


def test_annotation_aliases_are_plain_floats():
    # The unit annotations must be runtime no-ops: plain float, usable
    # in signatures with zero import-time or call-time cost.
    for alias in (units.Bytes, units.Seconds, units.BytesPerSecond,
                  units.Flops, units.FlopsPerSecond, units.Scalar):
        assert alias is float
