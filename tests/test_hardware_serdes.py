"""The EPYC IOD SerDes contention model — the paper's core hypothesis."""

import pytest

from repro.hardware import dual_node_cluster
from repro.hardware.link import Link, LinkClass, LinkSpec
from repro.hardware.serdes import (
    SerdesContentionModel,
    TrafficProfile,
    disabled_contention_model,
    route_crosses_socket,
    serdes_joints,
)


def link_of(cls):
    return Link(f"test/{cls.value}",
                LinkSpec(link_class=cls, bandwidth_per_direction=10e9,
                         latency=1e-6), "a", "b")


class TestJointCounting:
    def test_no_joints_on_single_link(self):
        assert serdes_joints([link_of(LinkClass.PCIE_GPU)]) == 0

    def test_dram_to_pcie_is_uncontended(self):
        route = [link_of(LinkClass.DRAM), link_of(LinkClass.PCIE_NIC)]
        assert serdes_joints(route) == 0

    def test_pcie_to_pcie_is_one_joint(self):
        route = [link_of(LinkClass.PCIE_GPU), link_of(LinkClass.PCIE_NIC)]
        assert serdes_joints(route) == 1

    def test_pcie_xgmi_pcie_is_two_joints(self):
        route = [link_of(LinkClass.PCIE_GPU), link_of(LinkClass.XGMI),
                 link_of(LinkClass.PCIE_NIC)]
        assert serdes_joints(route) == 2

    def test_roce_hops_break_joints(self):
        route = [link_of(LinkClass.PCIE_NIC), link_of(LinkClass.ROCE),
                 link_of(LinkClass.PCIE_NIC)]
        assert serdes_joints(route) == 0

    def test_nvlink_never_counts(self):
        route = [link_of(LinkClass.NVLINK), link_of(LinkClass.NVLINK)]
        assert serdes_joints(route) == 0


class TestDerate:
    def test_uncontended_route_full_speed(self):
        model = SerdesContentionModel()
        route = [link_of(LinkClass.DRAM), link_of(LinkClass.PCIE_NIC)]
        assert model.derate(route) == 1.0

    def test_sustained_worse_than_bursty(self):
        model = SerdesContentionModel()
        route = [link_of(LinkClass.PCIE_GPU), link_of(LinkClass.PCIE_NIC)]
        sustained = model.derate(route, TrafficProfile.SUSTAINED)
        bursty = model.derate(route, TrafficProfile.BURSTY)
        assert sustained < bursty < 1.0

    def test_more_joints_derate_more(self):
        model = SerdesContentionModel()
        one = [link_of(LinkClass.PCIE_GPU), link_of(LinkClass.PCIE_NIC)]
        two = [link_of(LinkClass.PCIE_GPU), link_of(LinkClass.XGMI),
               link_of(LinkClass.PCIE_NIC)]
        assert model.derate(two) < model.derate(one)

    def test_disabled_model_never_derates(self):
        model = disabled_contention_model()
        route = [link_of(LinkClass.PCIE_GPU), link_of(LinkClass.XGMI),
                 link_of(LinkClass.PCIE_NIC)]
        assert model.derate(route) == 1.0
        assert model.latency_factor(route) == 1.0

    def test_latency_inflates_only_when_contended(self):
        model = SerdesContentionModel()
        clean = [link_of(LinkClass.DRAM), link_of(LinkClass.PCIE_NIC)]
        dirty = [link_of(LinkClass.PCIE_GPU), link_of(LinkClass.PCIE_NIC)]
        assert model.latency_factor(clean) == 1.0
        assert model.latency_factor(dirty) > 4.0


class TestPaperCalibration:
    """Fig. 4's attained fractions fall out of the built topology."""

    @pytest.fixture(scope="class")
    def cluster(self):
        return dual_node_cluster()

    def test_same_socket_cpu_roce_attains_93_percent(self, cluster):
        route = cluster.topology.route("node0/dram0", "node1/dram0")
        fraction = route.bandwidth(TrafficProfile.SUSTAINED) / 25e9
        assert fraction == pytest.approx(0.93, abs=0.02)

    def test_cross_socket_cpu_roce_attains_about_half(self, cluster):
        route = cluster.topology.route_via(
            "node0/dram0", "node1/dram0", ["node0/nic1", "node1/nic1"]
        )
        fraction = route.bandwidth(TrafficProfile.SUSTAINED) / 25e9
        assert 0.40 <= fraction <= 0.55  # paper: 47 %

    def test_gpu_roce_same_socket_attains_about_half(self, cluster):
        route = cluster.topology.route("node0/gpu0", "node1/gpu0")
        fraction = route.bandwidth(TrafficProfile.SUSTAINED) / 25e9
        assert 0.42 <= fraction <= 0.58  # paper: 52 %

    def test_gpu_roce_cross_socket_is_worst(self, cluster):
        same = cluster.topology.route("node0/gpu0", "node1/gpu0")
        cross = cluster.topology.route_via(
            "node0/gpu0", "node1/gpu0", ["node0/nic1", "node1/nic1"]
        )
        assert (cross.bandwidth(TrafficProfile.SUSTAINED)
                < same.bandwidth(TrafficProfile.SUSTAINED))

    def test_cross_socket_latency_about_seven_times(self, cluster):
        same = cluster.topology.route("node0/dram0", "node1/dram0")
        cross = cluster.topology.route_via(
            "node0/dram0", "node1/dram0", ["node0/nic1", "node1/nic1"]
        )
        ratio = cross.latency() / same.latency()
        assert 5.0 <= ratio <= 9.0  # paper: ~7x


class TestRouteCrossesSocket:
    def test_detects_xgmi(self):
        assert route_crosses_socket([link_of(LinkClass.XGMI)])
        assert not route_crosses_socket([link_of(LinkClass.PCIE_GPU)])
