"""Chrome Trace export: schema validity, round trips, the validator."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.runtime.kernels import KernelKind
from repro.trace import (
    CHROME_COLORS,
    GLYPHS,
    diff_traces,
    load_document,
    load_trace,
    to_chrome,
    trace_from_document,
    validate_chrome_trace,
    write_trace,
)
from repro.trace.export import LINKS_PID
from repro.trace.model import TRACE_SCHEMA


@pytest.fixture(scope="module")
def chrome_doc(traced_ddp):
    _, metrics = traced_ddp
    return to_chrome(metrics.trace)


class TestKindCoverage:
    def test_every_kernel_kind_has_a_color(self):
        assert set(CHROME_COLORS) == set(KernelKind)

    def test_every_kernel_kind_has_a_glyph(self):
        assert set(GLYPHS) == set(KernelKind)


class TestExportedDocument:
    def test_validator_finds_no_problems(self, chrome_doc):
        assert validate_chrome_trace(chrome_doc) == []

    def test_schema_tag_rides_along(self, chrome_doc):
        assert chrome_doc["otherData"]["schema"] == TRACE_SCHEMA
        assert chrome_doc["repro"]["schema"] == TRACE_SCHEMA

    def test_every_b_has_a_matching_e(self, chrome_doc):
        opened = {}
        for event in chrome_doc["traceEvents"]:
            key = (event.get("cat"), event.get("id"), event.get("pid"))
            if event["ph"] == "b":
                assert key not in opened
                opened[key] = event["ts"]
            elif event["ph"] == "e":
                assert key in opened
                assert event["ts"] >= opened.pop(key)
        assert opened == {}

    def test_x_timestamps_monotone_per_track(self, chrome_doc):
        last = {}
        for event in chrome_doc["traceEvents"]:
            if event["ph"] != "X":
                continue
            track = (event["pid"], event["tid"])
            assert event["ts"] >= last.get(track, 0.0)
            assert event["dur"] >= 0.0
            last[track] = event["ts"]

    def test_x_events_categorized_by_kernel_kind(self, chrome_doc):
        kinds = {kind.value for kind in KernelKind}
        x_events = [e for e in chrome_doc["traceEvents"] if e["ph"] == "X"]
        assert x_events
        assert all(e["cat"] in kinds for e in x_events)

    def test_one_process_per_rank(self, chrome_doc, traced_ddp):
        _, metrics = traced_ddp
        names = {
            e["pid"]: e["args"]["name"]
            for e in chrome_doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        for rank in metrics.trace.ranks:
            assert names[rank] == f"rank{rank}"
        assert names[LINKS_PID] == "links"

    def test_link_counters_live_under_the_links_process(self, chrome_doc):
        counters = [e for e in chrome_doc["traceEvents"] if e["ph"] == "C"]
        assert counters
        for event in counters:
            if event["name"].startswith("link:"):
                assert event["pid"] == LINKS_PID
            else:  # rankN:device_mem / rankN:host_mem
                assert event["pid"] == int(
                    event["name"].split(":")[0][len("rank"):]
                )
            assert all(isinstance(v, (int, float))
                       for v in event["args"].values())


class TestRoundTrip:
    def test_write_load_preserves_the_trace(self, traced_ddp, tmp_path):
        _, metrics = traced_ddp
        path = tmp_path / "trace.json"
        write_trace(metrics.trace, str(path))
        again = load_trace(str(path))
        assert diff_traces(metrics.trace, again).clean
        # The reloaded file is itself a valid Chrome trace.
        assert validate_chrome_trace(load_document(str(path))) == []

    def test_document_without_native_schema_rejected(self):
        with pytest.raises(ConfigurationError):
            trace_from_document({"traceEvents": []})

    def test_non_object_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ConfigurationError):
            load_document(str(path))

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json at all")
        with pytest.raises(ConfigurationError):
            load_document(str(path))

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_document(str(tmp_path / "nope.json"))


class TestValidatorCatchesCorruption:
    """The validator must demonstrably fail on planted schema breaks."""

    def _events(self, chrome_doc):
        return json.loads(json.dumps(chrome_doc["traceEvents"]))

    def test_unknown_phase(self, chrome_doc):
        events = self._events(chrome_doc)
        events[0]["ph"] = "Q"
        assert any("phase" in p
                   for p in validate_chrome_trace({"traceEvents": events}))

    def test_negative_timestamp(self, chrome_doc):
        events = self._events(chrome_doc)
        events[0]["ts"] = -1.0
        assert any("bad ts" in p
                   for p in validate_chrome_trace({"traceEvents": events}))

    def test_unknown_kernel_category(self, chrome_doc):
        events = self._events(chrome_doc)
        x = next(e for e in events if e["ph"] == "X")
        x["cat"] = "mystery"
        assert any("not a kernel kind" in p
                   for p in validate_chrome_trace({"traceEvents": events}))

    def test_timestamp_regression_on_a_track(self, chrome_doc):
        events = self._events(chrome_doc)
        xs = [e for e in events if e["ph"] == "X"]
        track = (xs[0]["pid"], xs[0]["tid"])
        last = [e for e in xs if (e["pid"], e["tid"]) == track][-1]
        last["ts"] = 0.0
        problems = validate_chrome_trace({"traceEvents": events})
        # Either the moved event regresses or its successors now do.
        assert any("regresses" in p for p in problems) or last is xs[0]

    def test_unmatched_b_event(self, chrome_doc):
        events = self._events(chrome_doc)
        b = next(e for e in events if e["ph"] == "b")
        events.remove(next(
            e for e in events
            if e["ph"] == "e" and (e["cat"], e["id"], e["pid"])
            == (b["cat"], b["id"], b["pid"])
        ))
        assert any("no matching e" in p
                   for p in validate_chrome_trace({"traceEvents": events}))

    def test_orphan_e_event(self, chrome_doc):
        events = self._events(chrome_doc)
        b = next(e for e in events if e["ph"] == "b")
        events.remove(b)
        assert any("no matching b" in p
                   for p in validate_chrome_trace({"traceEvents": events}))

    def test_counter_without_numeric_args(self, chrome_doc):
        events = self._events(chrome_doc)
        c = next(e for e in events if e["ph"] == "C")
        c["args"] = {"bytes/s": "lots"}
        assert any("numeric args" in p
                   for p in validate_chrome_trace({"traceEvents": events}))

    def test_missing_trace_events(self):
        assert validate_chrome_trace({}) == [
            "traceEvents is missing or not a list"
        ]
