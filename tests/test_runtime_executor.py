"""The schedule executor on the DES."""

import pytest

from repro.collectives import CollectiveKind
from repro.errors import ConfigurationError
from repro.hardware import single_node_cluster
from repro.hardware.link import LinkClass
from repro.hardware.nvme import Raid0Volume
from repro.parallel.schedule import (
    CollectiveStep,
    CommunicatorSpec,
    ComputeStep,
    CpuWorkStep,
    HostTransferStep,
    IdleStep,
    Location,
    WaitForStep,
    WaitPendingStep,
    uniform_schedule,
)
from repro.runtime.executor import Executor
from repro.runtime.kernels import KernelKind
from repro.telemetry.timeline import Lane


@pytest.fixture()
def cluster():
    c = single_node_cluster()
    c.reset()
    return c


def schedule_of(steps, ranks=(0, 1, 2, 3)):
    ranks = list(ranks)
    return uniform_schedule(ranks, steps,
                            {"dp": CommunicatorSpec("dp", [ranks])})


class TestBasics:
    def test_compute_steps_advance_time(self, cluster):
        sched = schedule_of([ComputeStep(KernelKind.GEMM, 0.5, "g")])
        result = Executor(cluster, sched).run(1)
        assert result.iteration_times == [pytest.approx(0.5)]

    def test_multiple_iterations(self, cluster):
        sched = schedule_of([ComputeStep(KernelKind.GEMM, 0.25, "g")])
        result = Executor(cluster, sched).run(4)
        assert len(result.iteration_times) == 4
        assert result.total_time == pytest.approx(1.0)

    def test_idle_recorded(self, cluster):
        sched = schedule_of([IdleStep(0.2, "bubble")])
        result = Executor(cluster, sched).run(1)
        idles = result.timeline.records(rank=0, kind=KernelKind.IDLE)
        assert idles and idles[0].duration == pytest.approx(0.2)

    def test_zero_iterations_rejected(self, cluster):
        sched = schedule_of([ComputeStep(KernelKind.GEMM, 0.1, "g")])
        with pytest.raises(ConfigurationError):
            Executor(cluster, sched).run(0)


class TestCollectives:
    def test_blocking_collective_synchronizes_ranks(self, cluster):
        # Rank-uniform schedule; collective completes once for the group.
        sched = schedule_of([
            ComputeStep(KernelKind.GEMM, 0.1, "g"),
            CollectiveStep("ar", "dp", CollectiveKind.ALL_REDUCE, 4e9),
        ])
        result = Executor(cluster, sched).run(1)
        comm = result.timeline.records(rank=0, lane=Lane.COMMUNICATION)
        assert len(comm) == 1
        assert result.iteration_times[0] > 0.1

    def test_non_blocking_overlaps_with_compute(self, cluster):
        overlapped = schedule_of([
            CollectiveStep("ar", "dp", CollectiveKind.ALL_REDUCE, 9e9,
                           blocking=False),
            ComputeStep(KernelKind.GEMM, 1.0, "g"),
            WaitPendingStep(),
        ])
        blocking = schedule_of([
            CollectiveStep("ar", "dp", CollectiveKind.ALL_REDUCE, 9e9,
                           blocking=True),
            ComputeStep(KernelKind.GEMM, 1.0, "g"),
        ])
        cluster.reset()
        t_overlap = Executor(cluster, overlapped).run(1).iteration_times[0]
        cluster.reset()
        t_block = Executor(cluster, blocking).run(1).iteration_times[0]
        assert t_overlap < t_block

    def test_wait_for_specific_key(self, cluster):
        sched = schedule_of([
            CollectiveStep("prefetch", "dp", CollectiveKind.ALL_GATHER,
                           4e9, blocking=False),
            ComputeStep(KernelKind.GEMM, 0.001, "g"),
            WaitForStep(key="prefetch"),
            ComputeStep(KernelKind.GEMM, 0.001, "g2"),
        ])
        result = Executor(cluster, sched).run(1)
        assert result.iteration_times[0] > 0.002

    def test_collectives_fill_nvlink_ledger(self, cluster):
        sched = schedule_of([
            CollectiveStep("ar", "dp", CollectiveKind.ALL_REDUCE, 4e9),
        ])
        Executor(cluster, sched).run(1)
        nvlink = cluster.topology.links_of_class(LinkClass.NVLINK)
        assert sum(l.ledger.total_bytes for l in nvlink) > 0

    def test_collective_timeline_attributed_to_all_ranks(self, cluster):
        sched = schedule_of([
            CollectiveStep("ar", "dp", CollectiveKind.ALL_REDUCE, 1e9),
        ])
        result = Executor(cluster, sched).run(1)
        for rank in range(4):
            assert result.timeline.records(rank=rank,
                                           lane=Lane.COMMUNICATION)


class TestHostTransfers:
    def test_gpu_to_dram_charges_pcie_and_dram(self, cluster):
        sched = schedule_of([
            HostTransferStep("offload", Location.GPU, Location.DRAM, 2e9),
        ])
        Executor(cluster, sched).run(1)
        pcie = cluster.topology.links_of_class(LinkClass.PCIE_GPU)
        dram = cluster.topology.links_of_class(LinkClass.DRAM)
        assert sum(l.ledger.total_bytes for l in pcie) == pytest.approx(8e9)
        assert sum(l.ledger.total_bytes for l in dram) == pytest.approx(8e9)

    def test_nvme_transfer_needs_volume(self, cluster):
        sched = schedule_of([
            HostTransferStep("swap", Location.DRAM, Location.NVME, 1e9),
        ])
        with pytest.raises(ConfigurationError):
            Executor(cluster, sched).run(1)

    def test_nvme_transfer_with_volume(self, cluster):
        volume = Raid0Volume("md0", cluster.nodes[0].scratch_drives)
        volumes = {rank: volume for rank in range(4)}
        sched = schedule_of([
            HostTransferStep("swap", Location.DRAM, Location.NVME, 4e9),
        ])
        result = Executor(cluster, sched, swap_volumes=volumes).run(1)
        nvme = cluster.topology.links_of_class(LinkClass.PCIE_NVME)
        assert sum(l.ledger.total_bytes for l in nvme) == pytest.approx(16e9)
        # Media-bound: 16 GB over 2 drives at ~1.53 GB/s effective writes.
        assert result.iteration_times[0] > 3.0

    def test_nvme_read_faster_than_write(self, cluster):
        volume = Raid0Volume("md0", cluster.nodes[0].scratch_drives)
        volumes = {rank: volume for rank in range(4)}
        write = schedule_of([
            HostTransferStep("w", Location.DRAM, Location.NVME, 4e9)])
        read = schedule_of([
            HostTransferStep("r", Location.NVME, Location.DRAM, 4e9)])
        cluster.reset()
        t_write = Executor(cluster, write,
                           swap_volumes=volumes).run(1).iteration_times[0]
        cluster.reset()
        t_read = Executor(cluster, read,
                          swap_volumes=volumes).run(1).iteration_times[0]
        assert t_read < t_write


class TestCpuWork:
    def test_cpu_adam_blocks_and_charges_dram(self, cluster):
        sched = schedule_of([CpuWorkStep("adam", 1e9)])
        result = Executor(cluster, sched).run(1)
        assert result.iteration_times[0] > 0.1
        dram = cluster.topology.links_of_class(LinkClass.DRAM)
        assert sum(l.ledger.total_bytes for l in dram) > 0
        host_records = result.timeline.records(rank=0, lane=Lane.HOST_IO,
                                               kind=KernelKind.CPU_OPTIMIZER)
        assert len(host_records) == 1

    def test_socket_sharing_slows_cpu_adam(self, cluster):
        # Two ranks share each socket; a lone-rank schedule on rank 0 only
        # would still pay the sharing factor of its socket population.
        sched_all = schedule_of([CpuWorkStep("adam", 1e9)])
        result = Executor(cluster, sched_all).run(1)
        records = result.timeline.records(rank=0, kind=KernelKind.CPU_OPTIMIZER)
        from repro import calibration
        from repro.hardware.cpu import cpu_adam_step_time
        base = cpu_adam_step_time(1e9, cluster.nodes[0].spec.cpu)
        expected = base * 2 / calibration.CPU_ADAM_SHARE_EFFICIENCY
        assert records[0].duration == pytest.approx(expected)


class TestCollectiveGateErrors:
    def test_overfull_gate_names_group_and_counts(self, cluster):
        """The gate's arrival-overflow error must carry enough context
        to debug a miskeyed schedule: comm name, group index, and the
        observed vs expected arrival counts."""
        from repro.errors import SimulationError
        from repro.runtime.executor import _CollectiveGate

        class _StubEvent:
            def add_callback(self, callback):
                pass

        class _StubComm:
            def run(self, op, launch_count=1):
                return _StubEvent()

        executor = Executor(cluster, schedule_of([ComputeStep("fwd", 1.0)]))
        gate = _CollectiveGate(executor, _StubComm(), op=None,
                               kernel=KernelKind.NCCL_ALL_REDUCE,
                               group=[0, 1],
                               comm_name="dp", group_index=3)
        gate.arrive()
        gate.arrive()
        with pytest.raises(SimulationError) as error:
            gate.arrive()
        message = str(error.value)
        assert "'dp'[3]" in message
        assert "3 observed, 2 expected" in message
        assert "ranks [0, 1]" in message


class TestSharedEngineMode:
    def test_execute_runs_as_generator_on_shared_engine(self, cluster):
        from repro.sim.engine import Engine
        from repro.sim.flows import FlowNetwork

        engine = Engine()
        network = FlowNetwork(engine)
        sched = schedule_of([ComputeStep("fwd", 1.0)])
        executor = Executor(cluster, sched, engine=engine, network=network,
                            flow_tag="jobX/")
        proc = engine.process(executor.execute(2), name="body")
        engine.run()
        result = proc.value
        assert len(result.iteration_times) == 2
        assert result.total_time > 0

    def test_flow_tag_prefixes_process_names(self, cluster):
        from repro.sim.engine import Engine
        from repro.sim.flows import FlowNetwork

        engine = Engine()
        executor = Executor(cluster, schedule_of([ComputeStep("fwd", 1.0)]),
                            engine=engine, network=FlowNetwork(engine),
                            flow_tag="job7/")
        seen = []
        original = engine.process

        def spy(generator, name=""):
            seen.append(name)
            return original(generator, name)

        engine.process = spy
        proc = original(executor.execute(1), name="body")
        engine.run()
        assert proc.value is not None
        assert any(name.startswith("job7/rank0/") for name in seen)

    def test_should_stop_halts_between_iterations(self, cluster):
        from repro.sim.engine import Engine
        from repro.sim.flows import FlowNetwork

        engine = Engine()
        executor = Executor(cluster, schedule_of([ComputeStep("fwd", 1.0)]),
                            engine=engine, network=FlowNetwork(engine))
        flags = {"stop": False}
        proc = engine.process(
            executor.execute(10, should_stop=lambda: flags["stop"]),
            name="body")

        def request_stop():
            flags["stop"] = True

        engine.schedule_at(0.0015, request_stop)
        engine.run()
        completed = len(proc.value.iteration_times)
        assert 0 < completed < 10

    def test_standalone_run_unchanged(self, cluster):
        # run() still owns its private engine and liveness check.
        sched = schedule_of([ComputeStep("fwd", 1.0)])
        result = Executor(cluster, sched).run(2)
        assert len(result.iteration_times) == 2
        assert result.events_processed > 0
