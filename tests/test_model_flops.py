"""Per-iteration FLOP accounting."""

import pytest

from repro.model import (
    TrainingConfig,
    flops_factor,
    forward_flops,
    iteration_flops,
    paper_model,
)


class TestForwardFlops:
    def test_components_positive(self):
        fwd = forward_flops(paper_model(4), 16)
        assert fwd.attention_gemm > 0
        assert fwd.attention_scores > 0
        assert fwd.mlp > 0
        assert fwd.lm_head > 0

    def test_total_is_sum(self):
        fwd = forward_flops(paper_model(4), 16)
        assert fwd.forward_total == pytest.approx(
            fwd.attention_gemm + fwd.attention_scores + fwd.mlp + fwd.lm_head
        )

    def test_scales_linearly_with_batch(self):
        f1 = forward_flops(paper_model(4), 8).forward_total
        f2 = forward_flops(paper_model(4), 16).forward_total
        assert f2 == pytest.approx(2 * f1)

    def test_transformer_scales_with_layers(self):
        f1 = forward_flops(paper_model(4), 16)
        f2 = forward_flops(paper_model(8), 16)
        assert f2.mlp == pytest.approx(2 * f1.mlp)
        assert f2.lm_head == pytest.approx(f1.lm_head)  # depth-independent

    def test_mlp_dominates_attention_scores_at_short_seq(self):
        # seq 256 << 6h: dense GEMMs dominate, as the paper's Fig. 5 shows.
        fwd = forward_flops(paper_model(8), 16)
        assert fwd.mlp > 10 * fwd.attention_scores

    def test_approximate_6nd_rule(self):
        """Forward ~ 2 * params * tokens for the transformer core."""
        model = paper_model(48)
        fwd = forward_flops(model, 16)
        tokens = 16 * model.seq_length
        from repro.model import count_parameters
        core = count_parameters(model).transformer
        approx = 2.0 * core * tokens
        body = fwd.attention_gemm + fwd.mlp
        assert body == pytest.approx(approx, rel=0.05)


class TestIterationFlops:
    def test_recompute_adds_a_forward(self):
        model = paper_model(8)
        with_rc = iteration_flops(model, TrainingConfig(), 4)
        without = iteration_flops(
            model, TrainingConfig(activation_recompute=False), 4)
        assert with_rc > without
        assert with_rc / without < 4 / 3 + 0.01

    def test_scales_with_gpus(self):
        model = paper_model(8)
        f4 = iteration_flops(model, TrainingConfig(), 4)
        f8 = iteration_flops(model, TrainingConfig(), 8)
        assert f8 == pytest.approx(2 * f4)

    def test_flops_factor(self):
        assert flops_factor(TrainingConfig()) == 4.0
        assert flops_factor(TrainingConfig(activation_recompute=False)) == 3.0

    def test_paper_magnitude(self):
        """~185 TFLOP per iteration for 1.4 B on four GPUs (consistent
        with 438 TFLOP/s at 0.42 s iterations, Fig. 5/7)."""
        model = paper_model(26)
        flops = iteration_flops(model, TrainingConfig(), 4)
        assert flops == pytest.approx(185e12, rel=0.05)
