"""Trace query API: filters, busy/idle/overlap fractions."""

import pytest

from repro.runtime.kernels import KernelKind
from repro.trace.model import Lane, Span
from repro.trace.query import (
    busy_time_by_kind,
    communication_time,
    compute_busy_fraction,
    filter_spans,
    idle_fraction,
    overlap_fraction,
    span_bounds,
)


@pytest.fixture()
def spans():
    return [
        Span(0, Lane.COMPUTE, KernelKind.GEMM, "fwd", 0.0, 0.5),
        Span(0, Lane.COMPUTE, KernelKind.IDLE, "wait", 0.5, 0.7),
        Span(0, Lane.COMPUTE, KernelKind.OPTIMIZER, "adam", 0.7, 1.0),
        Span(0, Lane.COMMUNICATION, KernelKind.NCCL_ALL_REDUCE, "ar",
             0.4, 0.8),
        Span(1, Lane.COMPUTE, KernelKind.GEMM, "fwd", 0.0, 1.0),
    ]


class TestFilters:
    def test_filter_by_rank_lane_kind(self, spans):
        assert len(filter_spans(spans, rank=0)) == 4
        assert len(filter_spans(spans, rank=0, lane=Lane.COMPUTE)) == 3
        assert len(filter_spans(spans, kind=KernelKind.GEMM)) == 2
        assert filter_spans(spans, rank=1, lane=Lane.COMMUNICATION) == []

    def test_span_bounds(self, spans):
        assert span_bounds(spans) == (0.0, 1.0)
        assert span_bounds([]) == (0.0, 0.0)

    def test_busy_time_by_kind(self, spans):
        busy = busy_time_by_kind(spans, 0, Lane.COMPUTE)
        assert busy[KernelKind.GEMM] == pytest.approx(0.5)
        assert busy[KernelKind.IDLE] == pytest.approx(0.2)


class TestFractions:
    def test_compute_busy_excludes_idle(self, spans):
        assert compute_busy_fraction(spans, 0) == pytest.approx(0.8)
        assert compute_busy_fraction(spans, 1) == pytest.approx(1.0)

    def test_idle_fraction_is_complement(self, spans):
        assert idle_fraction(spans, 0) == pytest.approx(0.2)

    def test_communication_time(self, spans):
        assert communication_time(spans, 0) == pytest.approx(0.4)
        assert communication_time(spans, 1) == 0.0

    def test_empty_spans_give_zero(self):
        assert compute_busy_fraction([], 0) == 0.0


class TestOverlap:
    def test_partial_overlap(self, spans):
        # Communication 0.4-0.8; compute busy 0.0-0.5 and 0.7-1.0
        # (the 0.5-0.7 idle span does not count): overlap 0.2 of 0.4.
        assert overlap_fraction(spans, 0) == pytest.approx(0.5)

    def test_fully_hidden(self):
        spans = [
            Span(0, Lane.COMPUTE, KernelKind.GEMM, "f", 0.0, 1.0),
            Span(0, Lane.COMMUNICATION, KernelKind.NCCL_ALL_REDUCE, "ar",
                 0.2, 0.6),
        ]
        assert overlap_fraction(spans, 0) == pytest.approx(1.0)

    def test_fully_exposed(self):
        spans = [
            Span(0, Lane.COMPUTE, KernelKind.GEMM, "f", 0.0, 0.5),
            Span(0, Lane.COMMUNICATION, KernelKind.NCCL_ALL_REDUCE, "ar",
                 0.5, 1.0),
        ]
        assert overlap_fraction(spans, 0) == 0.0

    def test_no_communication_gives_zero(self):
        spans = [Span(0, Lane.COMPUTE, KernelKind.GEMM, "f", 0.0, 1.0)]
        assert overlap_fraction(spans, 0) == 0.0

    def test_adjacent_compute_spans_merge(self):
        spans = [
            Span(0, Lane.COMPUTE, KernelKind.GEMM, "a", 0.0, 0.5),
            Span(0, Lane.COMPUTE, KernelKind.ELEMENTWISE, "b", 0.5, 1.0),
            Span(0, Lane.COMMUNICATION, KernelKind.NCCL_ALL_REDUCE, "ar",
                 0.25, 0.75),
        ]
        assert overlap_fraction(spans, 0) == pytest.approx(1.0)
