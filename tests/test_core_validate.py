"""Run-level invariant validation."""

import pytest

from repro.core.runner import run_training
from repro.core.search import model_for_billions
from repro.core.validate import ValidationReport, validate_run
from repro.errors import SimulationError
from repro.hardware import dual_node_cluster, single_node_cluster
from repro.hardware.link import LinkClass
from repro.runtime.kernels import KernelKind
from repro.telemetry.timeline import Lane
from repro.parallel import (
    DdpStrategy,
    MegatronStrategy,
    pipeline_1f1b,
    zero2,
    zero2_cpu_offload,
    zero3,
    zero3_nvme_optimizer,
)


@pytest.mark.parametrize("factory", [
    DdpStrategy, MegatronStrategy, zero2, zero3, pipeline_1f1b,
])
def test_single_node_runs_validate(factory):
    cluster = single_node_cluster()
    metrics = run_training(cluster, factory(), model_for_billions(0.7),
                           iterations=2)
    report = validate_run(cluster, metrics)
    assert report.ok, report.details


@pytest.mark.parametrize("factory", [DdpStrategy, zero3])
def test_dual_node_runs_validate(factory):
    cluster = dual_node_cluster()
    metrics = run_training(cluster, factory(), model_for_billions(0.7),
                           iterations=2)
    report = validate_run(cluster, metrics)
    assert report.ok, report.details


def test_offload_runs_validate():
    cluster = single_node_cluster()
    metrics = run_training(cluster, zero2_cpu_offload(),
                           model_for_billions(1.4), iterations=2)
    assert validate_run(cluster, metrics).ok


def test_nvme_runs_validate():
    cluster = single_node_cluster()
    metrics = run_training(cluster, zero3_nvme_optimizer(),
                           model_for_billions(1.4), iterations=2)
    assert validate_run(cluster, metrics).ok


class TestReport:
    def test_raise_on_failure(self):
        report = ValidationReport()
        report.record("good", True)
        report.record("bad", False, "boom")
        assert not report.ok
        with pytest.raises(SimulationError, match="boom"):
            report.raise_on_failure()

    def test_raise_on_failure_names_every_failed_check(self):
        report = ValidationReport()
        report.record("first_check", False, "alpha detail")
        report.record("second_check", False, "beta detail")
        with pytest.raises(SimulationError) as excinfo:
            report.raise_on_failure()
        message = str(excinfo.value)
        assert "run validation failed" in message
        assert "first_check: alpha detail" in message
        assert "second_check: beta detail" in message

    def test_ok_report_does_not_raise(self):
        report = ValidationReport()
        report.record("good", True)
        report.raise_on_failure()


class TestFailurePaths:
    """Each validate_run check must actually fire on corrupted state."""

    @pytest.fixture()
    def run(self):
        cluster = single_node_cluster()
        metrics = run_training(cluster, zero2(), model_for_billions(0.7),
                               iterations=2)
        return cluster, metrics

    def _failed(self, cluster, metrics):
        report = validate_run(cluster, metrics)
        return {name for name, ok in report.checks.items() if not ok}

    def test_timeline_beyond_total_time(self, run):
        cluster, metrics = run
        timeline = metrics.execution.timeline
        total = metrics.execution.total_time
        timeline.record(0, Lane.COMPUTE, KernelKind.GEMM, "late",
                        total + 1.0, total + 2.0)
        assert "timeline_within_run" in self._failed(cluster, metrics)

    def test_overlapping_compute_records(self, run):
        cluster, metrics = run
        timeline = metrics.execution.timeline
        first = next(iter(timeline.records(rank=0, lane=Lane.COMPUTE)))
        timeline.record(0, Lane.COMPUTE, KernelKind.GEMM, "overlap",
                        first.start, first.end)
        assert "compute_lane_serial" in self._failed(cluster, metrics)

    def test_iteration_times_must_sum_to_total(self, run):
        cluster, metrics = run
        metrics.execution.iteration_times[0] += 1.0
        assert "iterations_sum_to_total" in self._failed(cluster, metrics)

    def test_over_capacity_pool(self, run):
        cluster, metrics = run
        gpu = cluster.gpu(0)
        gpu.memory._allocations["bogus"] = gpu.memory.capacity_bytes * 2
        assert "pools_within_capacity" in self._failed(cluster, metrics)

    def test_out_of_window_ledger_record(self, run):
        cluster, metrics = run
        link = cluster.topology.links_of_class(LinkClass.NVLINK)[0]
        total = metrics.execution.total_time
        link.ledger.record(total + 1.0, total + 2.0, 1024.0)
        assert "ledger_records_in_window" in self._failed(cluster, metrics)

    def test_over_rate_ledger_record(self, run):
        cluster, metrics = run
        link = cluster.topology.links_of_class(LinkClass.NVLINK)[0]
        # Twice the link's one-direction capacity for a tenth of a second.
        link.ledger.record(0.0, 0.1, link.capacity_per_direction * 0.2)
        failed = self._failed(cluster, metrics)
        assert "ledger_within_link_capacity" in failed

    def test_rate_tolerance_admits_capacity_traffic(self, run):
        cluster, metrics = run
        link = cluster.topology.links_of_class(LinkClass.NVLINK)[0]
        # Exactly at capacity: inside the tolerance band, must not fail.
        link.ledger.record(0.0, 0.1, link.capacity_per_direction * 0.1)
        assert "ledger_within_link_capacity" not in self._failed(
            cluster, metrics)

    def test_over_rate_against_degraded_capacity(self, run):
        cluster, metrics = run
        link = cluster.topology.links_of_class(LinkClass.NVLINK)[0]
        # Halve the link from t=0.01 on; traffic at 80 % of the *rated*
        # capacity inside the degraded window is over-rate against the
        # time-varying bound even though it would pass at full capacity.
        link.set_capacity_fraction(0.5, at_time=0.01)
        link.ledger.record(0.02, 0.12,
                           link.base_capacity_per_direction * 0.08)
        assert "ledger_within_link_capacity" in self._failed(
            cluster, metrics)

    def test_full_rate_before_degradation_passes(self, run):
        cluster, metrics = run
        link = cluster.topology.links_of_class(LinkClass.NVLINK)[0]
        # Drop the run's own traffic so only the synthetic record below
        # is judged against the time-varying bound.
        link.ledger.clear()
        link.set_capacity_fraction(0.5, at_time=0.05)
        # At rated capacity but entirely before the degradation begins.
        link.ledger.record(0.0, 0.04,
                           link.base_capacity_per_direction * 0.04)
        assert "ledger_within_link_capacity" not in self._failed(
            cluster, metrics)

    def test_missing_communication(self, run):
        cluster, metrics = run
        for link in cluster.topology.links_of_class(LinkClass.NVLINK):
            link.ledger.clear()
        for link in cluster.topology.links_of_class(LinkClass.ROCE):
            link.ledger.clear()
        assert "communication_happened" in self._failed(cluster, metrics)

    def test_empty_ledgers(self, run):
        cluster, metrics = run
        for link in cluster.topology.links:
            link.ledger.clear()
        failed = self._failed(cluster, metrics)
        assert "some_traffic_recorded" in failed
