"""Run-level invariant validation."""

import pytest

from repro.core.runner import run_training
from repro.core.search import model_for_billions
from repro.core.validate import ValidationReport, validate_run
from repro.errors import SimulationError
from repro.hardware import dual_node_cluster, single_node_cluster
from repro.parallel import (
    DdpStrategy,
    MegatronStrategy,
    pipeline_1f1b,
    zero2,
    zero2_cpu_offload,
    zero3,
    zero3_nvme_optimizer,
)


@pytest.mark.parametrize("factory", [
    DdpStrategy, MegatronStrategy, zero2, zero3, pipeline_1f1b,
])
def test_single_node_runs_validate(factory):
    cluster = single_node_cluster()
    metrics = run_training(cluster, factory(), model_for_billions(0.7),
                           iterations=2)
    report = validate_run(cluster, metrics)
    assert report.ok, report.details


@pytest.mark.parametrize("factory", [DdpStrategy, zero3])
def test_dual_node_runs_validate(factory):
    cluster = dual_node_cluster()
    metrics = run_training(cluster, factory(), model_for_billions(0.7),
                           iterations=2)
    report = validate_run(cluster, metrics)
    assert report.ok, report.details


def test_offload_runs_validate():
    cluster = single_node_cluster()
    metrics = run_training(cluster, zero2_cpu_offload(),
                           model_for_billions(1.4), iterations=2)
    assert validate_run(cluster, metrics).ok


def test_nvme_runs_validate():
    cluster = single_node_cluster()
    metrics = run_training(cluster, zero3_nvme_optimizer(),
                           model_for_billions(1.4), iterations=2)
    assert validate_run(cluster, metrics).ok


class TestReport:
    def test_raise_on_failure(self):
        report = ValidationReport()
        report.record("good", True)
        report.record("bad", False, "boom")
        assert not report.ok
        with pytest.raises(SimulationError, match="boom"):
            report.raise_on_failure()

    def test_ok_report_does_not_raise(self):
        report = ValidationReport()
        report.record("good", True)
        report.raise_on_failure()
