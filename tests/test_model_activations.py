"""Activation-memory model."""

import pytest

from repro.errors import ConfigurationError
from repro.model import (
    TrainingConfig,
    activation_bytes_per_layer,
    activation_memory_per_gpu,
    checkpoint_boundary_bytes,
    paper_model,
)


class TestPerLayer:
    def test_standard_estimate(self):
        m = paper_model(1)
        t = TrainingConfig()
        expected = 256 * 16 * 2048 * (34.0 + 5.0 * 16 * 256 / 2048)
        assert activation_bytes_per_layer(m, t) == pytest.approx(expected)

    def test_tensor_parallel_shards_most(self):
        m = paper_model(1)
        t = TrainingConfig()
        full = activation_bytes_per_layer(m, t)
        sharded = activation_bytes_per_layer(m, t, tensor_parallel=4)
        assert sharded < full
        assert sharded > full / 4  # LayerNorm inputs replicate

    def test_invalid_tp(self):
        with pytest.raises(ConfigurationError):
            activation_bytes_per_layer(paper_model(1), TrainingConfig(),
                                       tensor_parallel=0)


class TestCheckpointBoundary:
    def test_boundary_is_one_fp16_activation(self):
        m = paper_model(1)
        t = TrainingConfig()
        assert checkpoint_boundary_bytes(m, t) == pytest.approx(
            2 * 256 * 16 * 2048
        )


class TestPerGpu:
    def test_recompute_is_much_smaller(self):
        m = paper_model(26)
        full = activation_memory_per_gpu(
            m, TrainingConfig(activation_recompute=False))
        checkpointed = activation_memory_per_gpu(m, TrainingConfig())
        assert checkpointed < full / 5

    def test_recompute_scales_with_depth(self):
        t = TrainingConfig()
        small = activation_memory_per_gpu(paper_model(10), t)
        large = activation_memory_per_gpu(paper_model(100), t)
        assert large > small

    def test_paper_scale_1p4b(self):
        """~10 GB without recompute at 1.4 B (what pins DDP to 1.4 B)."""
        m = paper_model(26)
        full = activation_memory_per_gpu(
            m, TrainingConfig(activation_recompute=False))
        assert 8e9 < full < 12e9

    def test_pipeline_multiplies_in_flight(self):
        m = paper_model(8)
        t = TrainingConfig()
        single = activation_memory_per_gpu(m, t, pipeline_parallel=1)
        piped = activation_memory_per_gpu(m, t, pipeline_parallel=4)
        assert piped > single / 2  # local layers shrink but stages stack

    def test_invalid_pp(self):
        with pytest.raises(ConfigurationError):
            activation_memory_per_gpu(paper_model(1), TrainingConfig(),
                                      pipeline_parallel=0)
