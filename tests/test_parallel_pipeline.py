"""True 1F1B pipeline parallelism (extension)."""

import pytest

from repro.core.runner import run_training
from repro.core.search import model_for_billions
from repro.errors import ConfigurationError
from repro.hardware import dual_node_cluster, single_node_cluster
from repro.hardware.link import LinkClass
from repro.model import TrainingConfig, paper_model
from repro.parallel import MegatronStrategy, pipeline_1f1b
from repro.parallel.schedule import CollectiveStep
from repro.parallel.strategy import StrategyContext


@pytest.fixture(scope="module")
def ctx():
    return StrategyContext(single_node_cluster(), paper_model(26),
                           TrainingConfig())


class TestScheduleConstruction:
    def test_stage_layers_partition(self, ctx):
        strategy = pipeline_1f1b()
        layers = strategy.stage_layers(ctx)
        assert sum(layers) == 26
        assert len(layers) == 4
        assert max(layers) - min(layers) <= 1

    def test_micro_batch_default_is_twice_stages(self, ctx):
        assert pipeline_1f1b().micro_batches(ctx) == 8
        assert pipeline_1f1b(micro_batches=12).micro_batches(ctx) == 12

    def test_schedule_validates(self, ctx):
        schedule = pipeline_1f1b().build_schedule(ctx)
        schedule.validate()

    def test_per_rank_schedules_differ(self, ctx):
        schedule = pipeline_1f1b().build_schedule(ctx)
        lengths = {len(steps) for steps in schedule.steps_by_rank.values()}
        # First/last stages have one-sided communication: different shapes.
        first = schedule.steps_by_rank[0]
        last = schedule.steps_by_rank[3]
        first_comms = [s.comm for s in first
                       if isinstance(s, CollectiveStep)]
        last_comms = [s.comm for s in last if isinstance(s, CollectiveStep)]
        assert set(first_comms) == {"ppb0"}
        assert set(last_comms) == {"ppb2"}

    def test_boundary_communicators_are_pairs(self, ctx):
        schedule = pipeline_1f1b().build_schedule(ctx)
        for name, spec in schedule.communicators.items():
            assert len(spec.groups) == 1
            assert len(spec.groups[0]) == 2

    def test_rejects_single_gpu_or_thin_models(self):
        ctx_thin = StrategyContext(single_node_cluster(), paper_model(2),
                                   TrainingConfig())
        with pytest.raises(ConfigurationError):
            pipeline_1f1b().build_schedule(ctx_thin)


class TestExecution:
    def test_runs_and_produces_emergent_bubble(self):
        cluster = single_node_cluster()
        metrics = run_training(cluster, pipeline_1f1b(),
                               model_for_billions(1.4), iterations=3)
        busy = metrics.execution.timeline.compute_busy_fraction(0)
        # The fill/drain bubble emerges: busy strictly between 30 and 95 %.
        assert 0.3 < busy < 0.95

    def test_more_micro_batches_amortize_the_bubble(self):
        cluster = single_node_cluster()
        model = model_for_billions(1.4)
        few = run_training(cluster, pipeline_1f1b(micro_batches=4), model,
                           iterations=3)
        many = run_training(cluster, pipeline_1f1b(micro_batches=32), model,
                            iterations=3)
        assert many.tflops > few.tflops

    def test_internode_traffic_is_tiny_vs_tensor_parallel(self):
        model = model_for_billions(1.4)
        cluster = dual_node_cluster()
        pp = run_training(cluster, pipeline_1f1b(), model, iterations=3)
        cluster2 = dual_node_cluster()
        tp = run_training(cluster2, MegatronStrategy(), model, iterations=3)
        assert (pp.bandwidth[LinkClass.ROCE].average
                < 0.1 * tp.bandwidth[LinkClass.ROCE].average)
        assert pp.tflops > tp.tflops

    def test_memory_divides_states_by_stages(self):
        cluster = single_node_cluster()
        metrics = run_training(cluster, pipeline_1f1b(),
                               model_for_billions(1.4), iterations=2)
        per_gpu_params = metrics.memory.gpu_by_label["parameters"] / 4
        # fp16 parameters of one stage's layer block: 2 B x P / stages.
        assert per_gpu_params == pytest.approx(
            2 * metrics.model_parameters / 4, rel=0.01)
