"""Topology routing over the XE8545 cluster."""

import pytest

from repro.errors import TopologyError
from repro.hardware import (
    Device,
    DeviceKind,
    Link,
    LinkClass,
    LinkSpec,
    Topology,
    dual_node_cluster,
)


@pytest.fixture(scope="module")
def dual():
    return dual_node_cluster()


class TestRouting:
    def test_gpu_to_gpu_same_node_uses_nvlink(self, dual):
        route = dual.topology.route("node0/gpu0", "node0/gpu3")
        assert route.link_classes == (LinkClass.NVLINK,)

    def test_gpu_to_gpu_cross_node_path(self, dual):
        route = dual.topology.route("node0/gpu0", "node1/gpu0")
        assert route.link_classes == (
            LinkClass.PCIE_GPU, LinkClass.PCIE_NIC, LinkClass.ROCE,
            LinkClass.ROCE, LinkClass.PCIE_NIC, LinkClass.PCIE_GPU,
        )

    def test_cross_node_uses_same_socket_nic(self, dual):
        """NCCL-like NIC affinity: socket-1 GPUs exit via nic1."""
        route = dual.topology.route("node0/gpu3", "node1/gpu3")
        names = [link.name for link in route.links]
        assert "node0/pcie-nic1" in names
        assert "node1/pcie-nic1" in names

    def test_gpu_to_local_dram(self, dual):
        route = dual.topology.route("node0/gpu0", "node0/dram0")
        assert route.link_classes == (LinkClass.PCIE_GPU, LinkClass.DRAM)

    def test_gpu_to_remote_socket_dram_crosses_xgmi(self, dual):
        route = dual.topology.route("node0/gpu0", "node0/dram1")
        assert LinkClass.XGMI in route.link_classes

    def test_loopback_route(self, dual):
        route = dual.topology.route("node0/gpu0", "node0/gpu0")
        assert route.is_loopback
        assert route.bandwidth() == float("inf")
        assert route.transfer_time(1e9) == 0.0

    def test_route_is_cached(self, dual):
        a = dual.topology.route("node0/gpu0", "node0/gpu1")
        b = dual.topology.route("node0/gpu0", "node0/gpu1")
        assert a is b

    def test_unknown_device_raises(self, dual):
        with pytest.raises(TopologyError):
            dual.topology.route("node0/gpu0", "node9/gpu0")
        with pytest.raises(TopologyError):
            dual.topology.route("nope", "node0/gpu0")

    def test_route_via_forces_waypoints(self, dual):
        forced = dual.topology.route_via(
            "node0/dram0", "node1/dram0", ["node0/nic1", "node1/nic1"]
        )
        assert LinkClass.XGMI in forced.link_classes

    def test_link_between(self, dual):
        link = dual.topology.link_between("node0/cpu0", "node0/dram0")
        assert link.link_class is LinkClass.DRAM

    def test_link_between_missing(self, dual):
        with pytest.raises(TopologyError):
            dual.topology.link_between("node0/gpu0", "node0/nic0")


class TestRouteProperties:
    def test_transfer_time_includes_latency(self, dual):
        route = dual.topology.route("node0/gpu0", "node0/gpu1")
        small = route.transfer_time(1.0)
        assert small >= route.latency()

    def test_transfer_time_scales_with_bytes(self, dual):
        route = dual.topology.route("node0/gpu0", "node0/gpu1")
        t1 = route.transfer_time(1e9)
        t2 = route.transfer_time(2e9)
        assert t2 > t1

    def test_record_charges_all_links(self, dual):
        dual.reset()
        route = dual.topology.route("node0/gpu0", "node1/gpu0")
        route.record(0.0, 1.0, 7e9)
        for link in route.links:
            assert link.ledger.total_bytes == pytest.approx(7e9)
        dual.reset()

    def test_crosses(self, dual):
        route = dual.topology.route("node0/gpu0", "node1/gpu0")
        assert route.crosses(LinkClass.ROCE)
        assert not route.crosses(LinkClass.NVLINK)


class TestTopologyConstruction:
    def test_duplicate_device_rejected(self):
        topo = Topology()
        topo.add_device(Device("a", DeviceKind.CPU))
        with pytest.raises(TopologyError):
            topo.add_device(Device("a", DeviceKind.CPU))

    def test_link_with_unknown_endpoint_rejected(self):
        topo = Topology()
        topo.add_device(Device("a", DeviceKind.CPU))
        spec = LinkSpec(link_class=LinkClass.DRAM,
                        bandwidth_per_direction=1e9, latency=0.0)
        with pytest.raises(TopologyError):
            topo.add_link(Link("l", spec, "a", "b"))

    def test_disconnected_route_raises(self):
        topo = Topology()
        topo.add_device(Device("a", DeviceKind.CPU))
        topo.add_device(Device("b", DeviceKind.CPU))
        with pytest.raises(TopologyError):
            topo.route("a", "b")

    def test_reset_ledgers(self, dual):
        route = dual.topology.route("node0/gpu0", "node0/gpu1")
        route.record(0.0, 1.0, 1e9)
        dual.topology.reset_ledgers()
        assert all(len(link.ledger) == 0 for link in dual.topology.links)

    def test_ledgers_by_class_covers_all_links(self, dual):
        grouped = dual.topology.ledgers_by_class()
        total = sum(len(v) for v in grouped.values())
        assert total == len(dual.topology.links)
