"""Sanity of the calibration constants and their documented relations."""

import pytest

from repro import calibration


STRATEGY_CALS = {
    "DDP": calibration.DDP,
    "MEGATRON": calibration.MEGATRON,
    "ZERO1": calibration.ZERO1,
    "ZERO2": calibration.ZERO2,
    "ZERO3": calibration.ZERO3,
}


class TestStrategyCalibrations:
    @pytest.mark.parametrize("name,cal", STRATEGY_CALS.items())
    def test_efficiencies_are_fractions(self, name, cal):
        assert 0.0 < cal.gemm_efficiency <= 1.0
        assert 0.0 < cal.internode_efficiency <= 1.0

    @pytest.mark.parametrize("name,cal", STRATEGY_CALS.items())
    def test_overheads_non_negative(self, name, cal):
        assert cal.fixed_overhead_s >= 0
        assert cal.gpu_buffer_bytes >= 0
        assert cal.gpu_buffer_bytes_per_dp >= 0

    def test_zero2_has_highest_gemm_efficiency(self):
        """Fig. 7-a: ZeRO-2 is the fastest DeepSpeed stage."""
        assert (calibration.ZERO2.gemm_efficiency
                > calibration.ZERO1.gemm_efficiency)
        assert (calibration.ZERO2.gemm_efficiency
                > calibration.ZERO3.gemm_efficiency)

    def test_megatron_sustains_higher_internode_fraction(self):
        """Large pipelined all-reduces beat bucketed partition traffic."""
        for zero in (calibration.ZERO1, calibration.ZERO2,
                     calibration.ZERO3):
            assert (calibration.MEGATRON.internode_efficiency
                    > zero.internode_efficiency)


class TestGlobalConstants:
    def test_fractions(self):
        assert 0 < calibration.CPU_ADAM_SHARE_EFFICIENCY <= 1
        assert 0 < calibration.PINNED_MEMORY_FRACTION < 1
        assert 0 < calibration.AIO_EFFICIENCY <= 1
        assert calibration.MEGATRON_BUBBLE_FRACTION < 0.5

    def test_nvme_swap_symmetric(self):
        assert (calibration.NVME_SWAP_READ_BYTES_PER_PARAM
                == calibration.NVME_SWAP_WRITE_BYTES_PER_PARAM)

    def test_param_offload_reads_twice_per_pass(self):
        # fp16 weights fetched for forward and backward = 2 x 2 B.
        assert calibration.NVME_PARAM_READ_BYTES_PER_PARAM == 4.0
        assert calibration.NVME_PARAM_WRITE_BYTES_PER_PARAM == 2.0

    def test_pinned_labels_match_plan_labels(self):
        assert calibration.PINNED_LABELS == {
            "pinned_buffers", "nvme_staging", "param_staging"
        }

    def test_ddp_extra_bytes_breakdown(self):
        # fp32 gradient working copy + fp16 reducer bucket mirror.
        assert calibration.DDP_EXTRA_BYTES_PER_PARAM == 6.0

    def test_host_background_is_small(self):
        """Background traffic must stay an order below the real signals."""
        assert calibration.HOST_BACKGROUND_DRAM_BYTES_PER_S < 5e9
        assert calibration.HOST_BACKGROUND_XGMI_BYTES_PER_S < 1e9
