"""Energy/power model (extension)."""

import pytest

from repro.core.runner import run_training
from repro.core.search import model_for_billions
from repro.errors import ConfigurationError
from repro.hardware import single_node_cluster
from repro.parallel import zero2, zero2_cpu_offload
from repro.telemetry.energy import PowerModel, estimate_energy


@pytest.fixture(scope="module")
def metrics():
    cluster = single_node_cluster()
    m = run_training(cluster, zero2(), model_for_billions(1.4),
                     iterations=3)
    return cluster, m


class TestPowerModel:
    def test_blend_bounds(self):
        model = PowerModel()
        assert model.blend(100, 400, 0.0) == 100
        assert model.blend(100, 400, 1.0) == 400
        assert model.blend(100, 400, 2.0) == 400  # clamped
        assert model.blend(100, 400, -1.0) == 100

    def test_blend_linear(self):
        model = PowerModel()
        assert model.blend(100, 400, 0.5) == 250


class TestEstimate:
    def test_report_structure(self, metrics):
        cluster, m = metrics
        report = estimate_energy(cluster, m.execution.timeline,
                                 m.measurement_window)
        assert report.average_power_watts > 0
        assert set(report.by_component) >= {"gpu", "cpu", "dram", "nvme",
                                            "nic"}
        assert report.energy_joules == pytest.approx(
            report.average_power_watts * report.window_seconds)

    def test_node_power_magnitude(self, metrics):
        """A busy 4x A100 node draws roughly 1-3 kW."""
        cluster, m = metrics
        report = estimate_energy(cluster, m.execution.timeline,
                                 m.measurement_window)
        assert 800 < report.average_power_watts < 3000

    def test_gpu_dominates_when_compute_bound(self, metrics):
        cluster, m = metrics
        report = estimate_energy(cluster, m.execution.timeline,
                                 m.measurement_window)
        assert report.by_component["gpu"] == max(
            report.by_component.values())

    def test_offload_shifts_power_toward_cpu(self):
        cluster = single_node_cluster()
        m = run_training(cluster, zero2_cpu_offload(),
                         model_for_billions(1.4), iterations=3)
        report = estimate_energy(cluster, m.execution.timeline,
                                 m.measurement_window)
        cluster2 = single_node_cluster()
        m2 = run_training(cluster2, zero2(), model_for_billions(1.4),
                          iterations=3)
        baseline = estimate_energy(cluster2, m2.execution.timeline,
                                   m2.measurement_window)
        assert (report.by_component["cpu"] / report.by_component["gpu"]
                > baseline.by_component["cpu"] / baseline.by_component["gpu"])

    def test_tflops_per_kilowatt(self, metrics):
        cluster, m = metrics
        report = estimate_energy(cluster, m.execution.timeline,
                                 m.measurement_window)
        assert report.tflops_per_kilowatt(m.tflops) > 0

    def test_bad_window_rejected(self, metrics):
        cluster, m = metrics
        with pytest.raises(ConfigurationError):
            estimate_energy(cluster, m.execution.timeline, (1.0, 1.0))

    def test_energy_per_iteration(self, metrics):
        cluster, m = metrics
        report = estimate_energy(cluster, m.execution.timeline,
                                 m.measurement_window)
        per_iter = report.energy_per_iteration(m.iteration_time)
        assert per_iter == pytest.approx(
            report.average_power_watts * m.iteration_time)
