"""Job specs, the lifecycle state machine, the store, and arrivals."""

import pytest

from repro.cluster import (
    JOB_MIXES,
    JobSpec,
    JobState,
    JobStore,
    poisson_arrivals,
    trace_arrivals,
)
from repro.cluster.scenario import ClusterScenario
from repro.errors import ConfigurationError


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec(name="j", tenant="t", strategy="zero2", gpus=8,
                       priority=2, fidelity="hybrid")
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            JobSpec.from_dict({"name": "j", "gpu": 4})

    def test_nvme_strategy_rejected(self):
        with pytest.raises(ConfigurationError, match="NVMe"):
            JobSpec(name="j", strategy="zero3_opt_nvme")

    def test_warmup_must_leave_measurable_iterations(self):
        with pytest.raises(ConfigurationError):
            JobSpec(name="j", iterations=2, warmup_iterations=2)


class TestLifecycle:
    def _record(self):
        store = JobStore()
        return store, store.submit(JobSpec(name="j"), now=1.0)

    def test_happy_path(self):
        store, record = self._record()
        store.mark_started(record, 2.0)
        store.mark_completed(record, 5.0)
        assert record.state is JobState.COMPLETED
        assert record.queue_wait_s == 1.0
        assert store.all_done()

    def test_preemption_requeues_and_accumulates_wait(self):
        store, record = self._record()
        store.mark_started(record, 2.0)
        store.mark_preempted(record, 4.0)
        assert record.state is JobState.PREEMPTED
        assert record.preemptions == 1
        assert record in store.waiting()
        store.mark_started(record, 7.0)
        assert record.queue_wait_s == 1.0 + 3.0
        # started_at keeps the FIRST start (for victim ordering)
        assert record.started_at == 2.0

    def test_illegal_transition_rejected(self):
        store, record = self._record()
        with pytest.raises(ConfigurationError, match="illegal transition"):
            store.mark_completed(record, 2.0)

    def test_tenant_accounting(self):
        store = JobStore()
        a = store.submit(JobSpec(name="a", tenant="x"), 0.0)
        b = store.submit(JobSpec(name="b", tenant="x"), 0.0)
        store.mark_started(a, 0.0)
        store.mark_started(b, 0.0)
        store.charge_gpu_seconds(a, 8.0)
        store.charge_checkpoint(b, 1.5)
        store.mark_completed(a, 2.0)
        store.mark_failed(b, 2.0, "boom")
        account = store.tenants["x"]
        assert account.jobs_submitted == 2
        assert account.jobs_completed == 1
        assert account.jobs_failed == 1
        assert account.gpu_seconds == 8.0
        assert account.checkpoint_overhead_s == 1.5

    def test_concurrency_high_water_marks(self):
        store = JobStore()
        jobs = [store.submit(JobSpec(name=f"j{i}"), 0.0) for i in range(3)]
        store.mark_started(jobs[0], 0.0)
        store.mark_started(jobs[1], 0.0)
        store.mark_completed(jobs[0], 1.0)
        store.mark_started(jobs[2], 1.0)
        assert store.max_concurrent == 2
        assert store.max_in_system == 3

    def test_dense_deterministic_job_ids(self):
        store = JobStore()
        ids = [store.submit(JobSpec(name="n"), 0.0).job_id
               for _ in range(3)]
        assert ids == ["job0", "job1", "job2"]


class TestArrivals:
    def test_seeded_stream_is_reproducible(self):
        a = poisson_arrivals(1200.0, 10, seed=11)
        b = poisson_arrivals(1200.0, 10, seed=11)
        assert [(x.time, x.spec) for x in a] == [(y.time, y.spec)
                                                for y in b]

    def test_different_seeds_differ(self):
        a = poisson_arrivals(1200.0, 10, seed=1)
        b = poisson_arrivals(1200.0, 10, seed=2)
        assert [x.time for x in a] != [y.time for y in b]

    def test_times_nondecreasing_and_mean_rate_sane(self):
        arrivals = poisson_arrivals(3600.0, 200, seed=7)
        times = [a.time for a in arrivals]
        assert times == sorted(times)
        # mean interarrival should be within 3x of 1s at rate 3600/h
        assert 0.3 < times[-1] / len(times) < 3.0

    def test_every_mix_draws_valid_specs(self):
        for mix in JOB_MIXES:
            for arrival in poisson_arrivals(1200.0, 5, seed=3, mix=mix):
                assert arrival.spec.gpus >= 1

    def test_unknown_mix_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown job mix"):
            poisson_arrivals(1200.0, 5, mix="nope")

    def test_trace_arrivals_parse_and_default_names(self):
        arrivals = trace_arrivals([
            {"time": 0.0, "strategy": "ddp", "gpus": 2},
            {"time": 1.5, "name": "named", "gpus": 4},
        ])
        assert arrivals[0].spec.name == "trace-0"
        assert arrivals[1].spec.name == "named"
        assert arrivals[1].time == 1.5

    def test_trace_must_be_time_ordered(self):
        with pytest.raises(ConfigurationError, match="back in time"):
            trace_arrivals([{"time": 2.0}, {"time": 1.0}])

    def test_trace_entry_needs_time(self):
        with pytest.raises(ConfigurationError, match="no arrival time"):
            trace_arrivals([{"name": "j"}])


class TestScenario:
    def test_round_trip_and_cache_key_stability(self):
        scenario = ClusterScenario(policy="sjf", num_jobs=6,
                                   aging_rate=0.5, tie_order="seeded")
        again = ClusterScenario.from_dict(scenario.to_dict())
        assert again == scenario
        assert again.cache_key() == scenario.cache_key()

    def test_cache_key_separates_scenarios(self):
        a = ClusterScenario(policy="fifo")
        b = ClusterScenario(policy="sjf")
        assert a.cache_key() != b.cache_key()

    def test_trace_scenario_round_trips(self):
        scenario = ClusterScenario(
            arrivals="trace",
            trace_jobs=({"time": 0.0, "name": "j", "gpus": 2},),
        )
        again = ClusterScenario.from_dict(scenario.to_dict())
        assert again.expand_arrivals()[0].spec.name == "j"

    def test_bad_policy_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown policy"):
            ClusterScenario(policy="lifo")

    def test_trace_mode_needs_jobs(self):
        with pytest.raises(ConfigurationError, match="trace_jobs"):
            ClusterScenario(arrivals="trace")
