"""High-level runner: metrics, memory application, pinned ceiling."""

import pytest

from repro import calibration
from repro.core.runner import apply_memory_plan, plan_only, run_training
from repro.core.search import model_for_billions
from repro.errors import ConfigurationError, OutOfMemoryError
from repro.hardware import single_node_cluster
from repro.hardware.link import LinkClass
from repro.model import paper_model
from repro.parallel import DdpStrategy, zero2, zero2_cpu_offload
from repro.parallel.strategy import MemoryPlan


@pytest.fixture()
def cluster():
    c = single_node_cluster()
    c.reset()
    return c


class TestRunTraining:
    def test_metrics_bundle(self, cluster):
        metrics = run_training(cluster, DdpStrategy(), paper_model(4),
                               iterations=3)
        assert metrics.strategy_name == "ddp"
        assert metrics.num_gpus == 4
        assert metrics.tflops > 0
        assert metrics.iteration_time > 0
        assert len(metrics.execution.iteration_times) == 3
        assert metrics.billions_of_parameters == pytest.approx(
            0.3, abs=0.2)

    def test_warmup_excluded_from_window(self, cluster):
        metrics = run_training(cluster, DdpStrategy(), paper_model(4),
                               iterations=3, warmup_iterations=1)
        start, end = metrics.measurement_window
        assert start > 0
        assert end == pytest.approx(metrics.execution.total_time)

    def test_iterations_must_exceed_warmup(self, cluster):
        with pytest.raises(ConfigurationError):
            run_training(cluster, DdpStrategy(), paper_model(2),
                         iterations=1, warmup_iterations=1)

    def test_memory_snapshot_reflects_plan(self, cluster):
        metrics = run_training(cluster, DdpStrategy(), paper_model(4),
                               iterations=2)
        assert metrics.memory.gpu_used > 0
        assert "parameters" in metrics.memory.gpu_by_label

    def test_bandwidth_table_has_nvlink_traffic(self, cluster):
        metrics = run_training(cluster, zero2(), paper_model(8),
                               iterations=3)
        assert metrics.bandwidth[LinkClass.NVLINK].average > 0
        assert metrics.bandwidth[LinkClass.ROCE].average == 0  # one node

    def test_oom_on_oversized_model(self, cluster):
        with pytest.raises(OutOfMemoryError):
            run_training(cluster, DdpStrategy(), paper_model(100),
                         iterations=2)

    def test_deterministic_between_runs(self, cluster):
        a = run_training(cluster, zero2(), paper_model(8), iterations=3)
        b = run_training(cluster, zero2(), paper_model(8), iterations=3)
        assert a.iteration_time == pytest.approx(b.iteration_time)


class TestPlanOnly:
    def test_plan_only_fills_pools_without_simulating(self, cluster):
        report = plan_only(cluster, zero2(), paper_model(8))
        assert report.gpu_used > 0

    def test_plan_only_raises_on_oom(self, cluster):
        with pytest.raises(OutOfMemoryError):
            plan_only(cluster, DdpStrategy(), paper_model(60))


class TestApplyMemoryPlan:
    def test_nvme_plan_without_volume_rejected(self, cluster):
        plan = MemoryPlan(nvme={"swap": 1e9})
        with pytest.raises(ConfigurationError):
            apply_memory_plan(cluster, plan)

    def test_pinned_ceiling_enforced(self, cluster):
        socket_dram = cluster.dram_for_rank(0).memory.capacity_bytes
        over = socket_dram * calibration.PINNED_MEMORY_FRACTION / 2 * 1.01
        plan = MemoryPlan(cpu={"pinned_buffers": over})
        with pytest.raises(OutOfMemoryError) as err:
            apply_memory_plan(cluster, plan)
        assert "pinned" in str(err.value)

    def test_unpinned_labels_ignore_ceiling(self, cluster):
        socket_dram = cluster.dram_for_rank(0).memory.capacity_bytes
        big = socket_dram * 0.45  # x2 ranks/socket = 90 % of the pool
        plan = MemoryPlan(cpu={"optimizer_states": big})
        apply_memory_plan(cluster, plan)  # must not raise


class TestOffloadRun:
    def test_cpu_offload_populates_host_memory(self, cluster):
        metrics = run_training(cluster, zero2_cpu_offload(),
                               model_for_billions(1.4), iterations=2)
        assert metrics.memory.cpu_used > 50e9
        assert metrics.bandwidth[LinkClass.DRAM].average > 0
