"""Cluster-service determinism: tie orders, campaigns, CLU lints."""

import pytest

from repro.analysis import analyze_source
from repro.analysis.determinism.differ import diff_headline_runs
from repro.analysis.registry import code_owners
from repro.cluster import ClusterScenario, run_cluster
from repro.sim.engine import ReversedTies, SeededTies


def _tie_name(order):
    if isinstance(order, ReversedTies):
        return "reversed"
    if isinstance(order, SeededTies):
        return "seeded"
    return "fifo"


class TestTieOrderInvariance:
    @pytest.mark.parametrize("policy", ["fifo", "sjf", "memory-aware"])
    def test_report_is_tie_order_invariant(self, policy):
        """Same arrival seed + policy => field-identical ClusterReports
        under fifo/reversed/seeded engine tie orders."""
        scenario = ClusterScenario(policy=policy, num_jobs=8,
                                   rate_per_hour=12000.0, arrival_seed=7)

        def run(order):
            perturbed = scenario.replace(tie_order=_tie_name(order))
            return run_cluster(perturbed).report.headline()

        diffs, orders = diff_headline_runs(run, seed=7)
        assert orders == ["reversed", "seeded[7]"]
        assert diffs == []

    def test_same_scenario_bit_identical_payload(self):
        scenario = ClusterScenario(policy="sjf", num_jobs=6, mix="heavy",
                                   rate_per_hour=30000.0)
        a = run_cluster(scenario).report.to_dict()
        b = run_cluster(scenario).report.to_dict()
        assert a == b

    def test_arrival_seed_changes_the_run(self):
        base = ClusterScenario(num_jobs=8)
        a = run_cluster(base).report
        b = run_cluster(base.replace(arrival_seed=8)).report
        assert a.total_time_s != b.total_time_s


class TestCampaignIntegration:
    def test_serial_and_parallel_campaigns_identical(self):
        from repro.campaign import CampaignSpec, run_campaign
        from repro.campaign.report import diff_reports

        spec = CampaignSpec(name="clu", clusters=(
            {"name": "a", "num_jobs": 4},
            {"name": "b", "num_jobs": 4, "policy": "sjf"},
        ))
        serial = run_campaign(spec, workers=1)
        parallel = run_campaign(spec, workers=2)
        assert [job.job_id for job in serial.jobs] == [
            "cluster/a-fifo-n4-p1200x4", "cluster/b-sjf-n4-p1200x4"]
        assert diff_reports(serial, parallel) == []

    def test_cluster_results_cache_and_round_trip(self, tmp_path):
        from repro.campaign import CampaignSpec, ResultCache, run_campaign

        spec = CampaignSpec(name="clu", clusters=(
            ClusterScenario(name="c", num_jobs=3),
        ))
        cache = ResultCache(tmp_path / "cache")
        cold = run_campaign(spec, cache=cache)
        warm = run_campaign(spec, cache=cache)
        assert not cold.jobs[0].cached
        assert warm.jobs[0].cached
        assert warm.jobs[0].payload == cold.jobs[0].payload

    def test_campaign_spec_round_trips_clusters(self):
        from repro.campaign import CampaignSpec

        spec = CampaignSpec(name="clu", clusters=(
            ClusterScenario(name="c", policy="memory-aware"),
        ))
        again = CampaignSpec.from_dict(spec.to_dict())
        assert again.clusters == spec.clusters


class TestCluLints:
    def test_codes_registered_to_the_scheduler_pass(self):
        owners = code_owners()
        assert owners["CLU001"] == "clu-scheduler-determinism"
        assert owners["CLU002"] == "clu-scheduler-determinism"

    def test_wall_clock_read_flagged(self, tmp_path):
        (tmp_path / "sched.py").write_text(
            "import time\n"
            "def order_key(job):\n"
            "    return (job.priority, time.time())\n"
        )
        report = analyze_source(tmp_path)
        codes = [f.code for f in report.findings]
        assert "CLU001" in codes

    def test_global_rng_flagged_even_when_seeded_elsewhere(self, tmp_path):
        # DET010 is suppressed by a module-level random.seed; CLU002
        # is stricter and still fires.
        (tmp_path / "sched.py").write_text(
            "import random\n"
            "random.seed(7)\n"
            "def pick(jobs):\n"
            "    return random.choice(jobs)\n"
        )
        report = analyze_source(tmp_path)
        codes = [f.code for f in report.findings]
        assert "CLU002" in codes
        assert "DET010" not in codes

    def test_unseeded_random_instance_flagged(self, tmp_path):
        (tmp_path / "sched.py").write_text(
            "import random\n"
            "def jitter():\n"
            "    return random.Random().random()\n"
        )
        report = analyze_source(tmp_path)
        assert "CLU002" in [f.code for f in report.findings]

    def test_clean_scheduler_module_passes(self, tmp_path):
        (tmp_path / "sched.py").write_text(
            "import random\n"
            "def arrivals(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return [rng.expovariate(1.0) for _ in range(3)]\n"
        )
        report = analyze_source(tmp_path)
        assert [f for f in report.findings
                if f.code.startswith("CLU")] == []

    def test_real_cluster_package_is_clean(self):
        report = analyze_source()
        assert [f for f in report.findings
                if f.code.startswith("CLU")] == []
