"""Hybrid TP x ZeRO strategy (extension)."""

import pytest

from repro.collectives import CollectiveKind
from repro.errors import ConfigurationError
from repro.hardware import dual_node_cluster, single_node_cluster
from repro.model import TrainingConfig, ZeroStage, paper_model
from repro.parallel import hybrid_tp_zero1, hybrid_tp_zero2, zero1
from repro.parallel.hybrid import HybridTpZeroStrategy
from repro.parallel.schedule import CollectiveStep
from repro.parallel.strategy import StrategyContext


@pytest.fixture(scope="module")
def ctx():
    return StrategyContext(dual_node_cluster(), paper_model(26),
                           TrainingConfig())


class TestConstruction:
    def test_stage3_rejected(self):
        with pytest.raises(ConfigurationError):
            HybridTpZeroStrategy(zero_stage=ZeroStage.PARAMETERS)

    def test_names(self):
        assert hybrid_tp_zero1().name == "hybrid_tp_zero1"
        assert hybrid_tp_zero2().name == "hybrid_tp_zero2"


class TestDegrees:
    def test_tp_within_node_dp_across(self, ctx):
        strategy = hybrid_tp_zero1()
        assert strategy.model_parallel_degree(ctx) == 4
        assert strategy.data_parallel_degree(ctx) == 2

    def test_single_node_degenerates_to_pure_tp(self):
        ctx1 = StrategyContext(single_node_cluster(), paper_model(8),
                               TrainingConfig())
        strategy = hybrid_tp_zero1()
        assert strategy.data_parallel_degree(ctx1) == 1
        assert strategy.model_parallel_degree(ctx1) == 4


class TestMemory:
    def test_tp_shard_divides_states(self, ctx):
        plan = hybrid_tp_zero1().memory_plan(ctx)
        # params/grads sharded by mp=4, optimizer further by dp=2.
        assert plan.gpu["parameters"] == pytest.approx(
            2 * ctx.total_params / 4)
        assert plan.gpu["gradients"] == pytest.approx(
            2 * ctx.total_params / 4)
        assert plan.gpu["optimizer_states"] == pytest.approx(
            12 * ctx.total_params / 8)

    def test_zero2_also_partitions_gradients(self, ctx):
        plan = hybrid_tp_zero2().memory_plan(ctx)
        assert plan.gpu["gradients"] == pytest.approx(
            2 * ctx.total_params / 8)

    def test_hybrid_fits_more_than_pure_zero1(self, ctx):
        hybrid_plan = hybrid_tp_zero1().memory_plan(ctx)
        zero_plan = zero1().memory_plan(ctx)

        def states(plan):
            return (plan.gpu["parameters"] + plan.gpu["gradients"]
                    + plan.gpu["optimizer_states"])

        assert states(hybrid_plan) < states(zero_plan)


class TestSchedule:
    def test_two_communicators(self, ctx):
        schedule = hybrid_tp_zero1().build_schedule(ctx)
        schedule.validate()
        assert set(schedule.communicators) == {"tp", "dp"}
        tp = schedule.communicators["tp"]
        dp = schedule.communicators["dp"]
        assert tp.groups == [[0, 1, 2, 3], [4, 5, 6, 7]]
        assert dp.groups == [[0, 4], [1, 5], [2, 6], [3, 7]]

    def test_tp_blocking_dp_overlapped(self, ctx):
        schedule = hybrid_tp_zero1().build_schedule(ctx)
        for step in schedule.steps_by_rank[0]:
            if isinstance(step, CollectiveStep):
                if step.comm == "tp":
                    assert step.blocking
                elif step.kind is not CollectiveKind.ALL_GATHER:
                    assert not step.blocking

    def test_zero2_variant_reduces(self, ctx):
        schedule = hybrid_tp_zero2().build_schedule(ctx)
        dp_kinds = {step.kind for step in schedule.steps_by_rank[0]
                    if isinstance(step, CollectiveStep)
                    and step.comm == "dp"}
        assert CollectiveKind.REDUCE in dp_kinds

    def test_zero1_gathers_updated_params(self, ctx):
        schedule = hybrid_tp_zero1().build_schedule(ctx)
        collectives = [s for s in schedule.steps_by_rank[0]
                       if isinstance(s, CollectiveStep) and s.comm == "dp"]
        assert collectives[-1].kind is CollectiveKind.ALL_GATHER


class TestEndToEnd:
    def test_runs_and_beats_megatron(self):
        from repro.core.runner import run_training
        from repro.core.search import model_for_billions
        from repro.parallel import MegatronStrategy

        cluster = dual_node_cluster()
        model = model_for_billions(5.5)
        hybrid = run_training(cluster, hybrid_tp_zero1(), model,
                              iterations=3)
        megatron = run_training(cluster, MegatronStrategy(), model,
                                iterations=3)
        assert hybrid.tflops > 2 * megatron.tflops
