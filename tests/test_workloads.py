"""Synthetic corpus, tokenizer, dataset, and distributed loader."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads import (
    DistributedBatchLoader,
    LmDataset,
    SyntheticCorpus,
    Tokenizer,
)


@pytest.fixture(scope="module")
def corpus():
    return SyntheticCorpus(lexicon_size=500, seed=7)


@pytest.fixture(scope="module")
def tokenizer(corpus):
    return Tokenizer.train([corpus.text(20)], vocab_size=1024)


class TestCorpus:
    def test_deterministic_under_seed(self):
        a = SyntheticCorpus(lexicon_size=500, seed=1).article(3)
        b = SyntheticCorpus(lexicon_size=500, seed=1).article(3)
        assert a.text == b.text

    def test_different_seeds_differ(self):
        a = SyntheticCorpus(lexicon_size=500, seed=1).article(0)
        b = SyntheticCorpus(lexicon_size=500, seed=2).article(0)
        assert a.text != b.text

    def test_random_access_matches_stream(self, corpus):
        streamed = list(corpus.articles(5))
        assert streamed[4].text == corpus.article(4).text

    def test_article_structure(self, corpus):
        article = corpus.article(0)
        assert article.title
        assert 2 <= len(article.paragraphs) <= 7
        assert article.word_count > 10

    def test_zipf_head_dominates(self, corpus):
        """The most frequent word appears far more than the median one."""
        from collections import Counter
        words = corpus.text(50).lower().split()
        counts = Counter(w.strip(".") for w in words)
        frequencies = sorted(counts.values(), reverse=True)
        assert frequencies[0] > 5 * frequencies[len(frequencies) // 2]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticCorpus(lexicon_size=10)
        with pytest.raises(ConfigurationError):
            SyntheticCorpus(zipf_exponent=1.0)


class TestTokenizer:
    def test_vocab_capped(self, corpus):
        tok = Tokenizer.train([corpus.text(5)], vocab_size=256)
        assert tok.vocab_size <= 256

    def test_round_trip_on_known_words(self, corpus, tokenizer):
        text = corpus.article(0).paragraphs[0]
        decoded = tokenizer.decode(tokenizer.encode(text))
        # Known-word round trip loses only punctuation/case.
        original = [w.strip(".,;:!?\"'()") for w in text.lower().split()]
        assert decoded.split() == [w for w in original if w]

    def test_character_fallback(self, tokenizer):
        ids = tokenizer.encode("zzzzqqqqzzzz")
        assert ids  # unknown word decomposes into characters
        assert tokenizer.unk_id not in ids or len(ids) > 0

    def test_eos_appended(self, tokenizer):
        ids = tokenizer.encode("hello", add_eos=True)
        assert ids[-1] == tokenizer.eos_id

    def test_specials_have_distinct_ids(self, tokenizer):
        assert len({tokenizer.pad_id, tokenizer.unk_id,
                    tokenizer.eos_id}) == 3

    def test_decode_skips_specials(self, tokenizer):
        text = tokenizer.decode([tokenizer.pad_id, tokenizer.eos_id])
        assert text == ""

    def test_train_rejects_tiny_vocab(self):
        with pytest.raises(ConfigurationError):
            Tokenizer.train(["hello"], vocab_size=10)


class TestDataset:
    def test_fixed_windows(self, corpus, tokenizer):
        ds = LmDataset.from_corpus(corpus, tokenizer, num_articles=30,
                                   seq_length=64)
        assert len(ds) > 0
        for i in (0, len(ds) - 1):
            assert ds[i].shape == (64,)

    def test_windows_are_contiguous(self):
        ds = LmDataset(list(range(100)), seq_length=10)
        assert list(ds[0]) == list(range(10))
        assert list(ds[3]) == list(range(30, 40))

    def test_total_tokens(self):
        ds = LmDataset(list(range(105)), seq_length=10)
        assert len(ds) == 10
        assert ds.total_tokens == 100

    def test_index_errors(self):
        ds = LmDataset(list(range(100)), seq_length=10)
        with pytest.raises(IndexError):
            ds[10]

    def test_too_short_stream_rejected(self):
        with pytest.raises(ConfigurationError):
            LmDataset([1, 2, 3], seq_length=10)


class TestLoader:
    @pytest.fixture()
    def dataset(self):
        return LmDataset(list(range(10_000)), seq_length=10)

    def test_batch_shape(self, dataset):
        loader = DistributedBatchLoader(dataset, micro_batch=16, rank=0,
                                        world_size=4, shuffle=False)
        batch = next(iter(loader))
        assert batch.shape == (16, 10)

    def test_ranks_see_disjoint_samples(self, dataset):
        seen = []
        for rank in range(4):
            loader = DistributedBatchLoader(dataset, micro_batch=4,
                                            rank=rank, world_size=4,
                                            shuffle=False)
            rows = np.concatenate([b for b in loader])
            seen.append({int(r[0]) for r in rows})
        for a in range(4):
            for b in range(a + 1, 4):
                assert not (seen[a] & seen[b])

    def test_equal_batches_per_rank(self, dataset):
        counts = set()
        for rank in range(4):
            loader = DistributedBatchLoader(dataset, micro_batch=16,
                                            rank=rank, world_size=4)
            counts.add(sum(1 for _ in loader))
        assert len(counts) == 1
        assert counts.pop() == loader.batches_per_epoch

    def test_shuffle_changes_with_epoch(self, dataset):
        loader = DistributedBatchLoader(dataset, micro_batch=4, rank=0,
                                        world_size=1, shuffle=True, seed=3)
        first = next(iter(loader)).copy()
        loader.set_epoch(1)
        second = next(iter(loader))
        assert not np.array_equal(first, second)

    def test_shuffle_deterministic_per_epoch(self, dataset):
        a = DistributedBatchLoader(dataset, micro_batch=4, rank=0,
                                   world_size=1, seed=3)
        b = DistributedBatchLoader(dataset, micro_batch=4, rank=0,
                                   world_size=1, seed=3)
        assert np.array_equal(next(iter(a)), next(iter(b)))

    def test_validation(self, dataset):
        with pytest.raises(ConfigurationError):
            DistributedBatchLoader(dataset, micro_batch=0, rank=0,
                                   world_size=1)
        with pytest.raises(ConfigurationError):
            DistributedBatchLoader(dataset, micro_batch=1, rank=5,
                                   world_size=4)
