"""Differential corpus for the hybrid fidelity fast path.

Tolerance contract (documented in DESIGN.md, "Fast path & fidelity"):

* **Structure is exact** — per-link ledger record counts, timeline span
  counts, flow/collective span counts, and iteration counts are
  integer-identical between a hybrid run and the same spec at full
  fidelity.
* **Values are differ-identical** — every headline float (times, TFLOPs,
  bandwidth stats, byte totals) agrees within the perturbation differ's
  6-significant-figure rounding (:func:`repro.analysis.determinism.
  differ.round_sig`).  The residual is pure float-accumulation drift in
  the *full* run's later iterations; the extrapolation itself is exact
  replication.
* **Fallbacks are byte-identical** — a hybrid request that cannot be
  honoured (fault plan, too few iterations, steady state not detected)
  produces the full-fidelity headline exactly, plus a
  ``fastpath.fallback_reason`` saying why.
"""

import pytest

from repro.analysis.determinism.differ import round_sig
from repro.api import run_spec
from repro.api.spec import RunSpec
from repro.core.results import headline_from_payload, metrics_to_dict
from repro.experiments import registry
from repro.sim.fastpath import (
    HYBRID_MEASURE_ITERATIONS,
    hybrid_simulated_iterations,
    is_steady,
)


def flatten(metrics):
    return headline_from_payload(metrics_to_dict(metrics))


def assert_differ_identical(full_flat, hybrid_flat):
    assert set(full_flat) == set(hybrid_flat)
    for key in full_flat:
        a, b = full_flat[key], hybrid_flat[key]
        if isinstance(a, float) and isinstance(b, float):
            assert round_sig(a) == round_sig(b), (key, a, b)
        else:
            assert a == b, (key, a, b)


STEADY_SPECS = [
    RunSpec(strategy="zero3", num_layers=8, nodes=2,
            iterations=8, warmup_iterations=1),
    RunSpec(strategy="zero2", num_layers=8, nodes=1,
            iterations=8, warmup_iterations=1),
    RunSpec(strategy="ddp", num_layers=6, nodes=1,
            iterations=6, warmup_iterations=1),
    RunSpec(strategy="megatron", num_layers=8, nodes=1,
            iterations=6, warmup_iterations=1),
    RunSpec(strategy="zero3_opt_cpu_param_cpu", num_layers=8, nodes=1,
            iterations=6, warmup_iterations=1),
]


class TestSteadyDetector:
    def test_needs_two_measured_iterations(self):
        assert not is_steady([1.0, 2.0], 1)
        assert is_steady([1.0, 2.0, 2.0], 1)

    def test_perturbation_defeats_detection(self):
        assert not is_steady([1.0, 2.0, 2.1], 1)

    def test_tolerance_absorbs_clock_dust(self):
        assert is_steady([1.0, 2.0, 2.0 + 1e-12], 1)

    def test_nonpositive_reference_rejected(self):
        assert not is_steady([1.0, 0.0, 0.0], 1)

    def test_simulated_iteration_count(self):
        assert hybrid_simulated_iterations(10, 1) == 1 + HYBRID_MEASURE_ITERATIONS
        assert hybrid_simulated_iterations(2, 1) == 2  # capped at target


class TestHybridMatchesFull:
    @pytest.mark.parametrize(
        "spec", STEADY_SPECS, ids=lambda s: s.label)
    def test_headline_differ_identical(self, spec):
        full = run_spec(spec)
        hybrid = run_spec(spec.replace(fidelity="hybrid"))
        assert hybrid.fastpath is not None and hybrid.fastpath.applied
        assert (hybrid.fastpath.simulated_iterations
                + hybrid.fastpath.extrapolated_iterations == spec.iterations)
        assert full.fastpath is None
        assert_differ_identical(flatten(full), flatten(hybrid))

    def test_structure_exact_with_trace(self):
        spec = RunSpec(strategy="zero3", num_layers=8, nodes=2,
                       iterations=8, warmup_iterations=1, trace=True)
        full = run_spec(spec)
        hybrid = run_spec(spec.replace(fidelity="hybrid"))
        tf, th = full.trace, hybrid.trace
        assert len(tf.spans) == len(th.spans)
        assert len(tf.flows) == len(th.flows)
        assert len(tf.collectives) == len(th.collectives)
        for account in tf.links:
            other = th.link_account(account.name)
            # Record counts replicate exactly; byte totals only drift by
            # float accumulation in the full run, far inside the differ's
            # 6-significant-figure rounding.
            assert other is not None
            assert account.record_count == other.record_count
            assert round_sig(account.total_bytes) == round_sig(
                other.total_bytes)
        # Synthetic marking: exactly the extrapolated iterations' flow
        # spans are synthetic, and a full trace has none.
        assert sum(1 for s in tf.flows if s.synthetic) == 0
        synthetic = sum(1 for s in th.flows if s.synthetic)
        assert hybrid.fastpath is not None
        per_iteration = len(th.flows) / spec.iterations
        assert synthetic == pytest.approx(
            per_iteration * hybrid.fastpath.extrapolated_iterations)
        # Flow ids stay unique after replication.
        ids = [s.flow_id for s in th.flows]
        assert len(ids) == len(set(ids))

    def test_events_accounting_split(self):
        spec = RunSpec(strategy="zero2", num_layers=8, nodes=1,
                       iterations=10, warmup_iterations=1)
        hybrid = run_spec(spec.replace(fidelity="hybrid"))
        execution = hybrid.execution
        assert execution.extrapolated_iterations == 10 - 3
        assert execution.events_extrapolated > 0
        # Simulated and extrapolated work stay in separate counters.
        full = run_spec(spec)
        assert execution.events_processed < full.execution.events_processed


class TestFallbacks:
    def test_fault_plan_forces_full_fidelity(self):
        spec = RunSpec(strategy="zero3", num_layers=8, nodes=2,
                       iterations=6, warmup_iterations=1,
                       faults=("switch0:down@t=1ms,dur=1ms",))
        full = run_spec(spec)
        hybrid = run_spec(spec.replace(fidelity="hybrid"))
        assert hybrid.fastpath is not None
        assert not hybrid.fastpath.applied
        assert hybrid.fastpath.fallback_reason == "fault plan present"
        assert hybrid.execution.extrapolated_iterations == 0
        # The fallback *is* the full path: headlines match exactly.
        assert flatten(full) == flatten(hybrid)

    def test_too_few_iterations_forces_full_fidelity(self):
        spec = RunSpec(strategy="zero2", num_layers=6, nodes=1,
                       iterations=3, warmup_iterations=1)
        hybrid = run_spec(spec.replace(fidelity="hybrid"))
        assert hybrid.fastpath is not None
        assert not hybrid.fastpath.applied
        assert hybrid.fastpath.fallback_reason == "too few iterations"
        assert flatten(run_spec(spec)) == flatten(hybrid)

    def test_unsteady_measurement_forces_full_fidelity(self, monkeypatch):
        # Deterministic schedules are always steady, so force the
        # detector to fail to exercise the rerun path.
        import repro.core.runner as runner

        monkeypatch.setattr(runner, "is_steady",
                            lambda times, warmup, **kw: False)
        spec = RunSpec(strategy="zero2", num_layers=6, nodes=1,
                       iterations=6, warmup_iterations=1)
        hybrid = run_spec(spec.replace(fidelity="hybrid"))
        assert hybrid.fastpath is not None
        assert not hybrid.fastpath.applied
        assert hybrid.fastpath.fallback_reason == "steady state not detected"
        assert len(hybrid.execution.iteration_times) == 6
        monkeypatch.undo()
        assert flatten(run_spec(spec)) == flatten(hybrid)


def _rows_differ_identical(full_rows, hybrid_rows, context):
    assert len(full_rows) == len(hybrid_rows), context
    for index, (a, b) in enumerate(zip(full_rows, hybrid_rows)):
        assert _values_match(a, b), (context, index, a, b)


def _values_match(a, b):
    if isinstance(a, float) and isinstance(b, float):
        return round_sig(a) == round_sig(b)
    if isinstance(a, dict) and isinstance(b, dict):
        return (set(a) == set(b)
                and all(_values_match(a[k], b[k]) for k in a))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return (len(a) == len(b)
                and all(_values_match(x, y) for x, y in zip(a, b)))
    return a == b


class TestExperimentCorpus:
    """Hybrid == full on every registered experiment's QUICK_SPEC."""

    @pytest.mark.parametrize("experiment_id",
                             sorted(registry.EXPERIMENTS))
    def test_quick_spec_rows_match(self, experiment_id):
        from repro.experiments.common import ExperimentSpec

        spec = registry.spec_for(experiment_id)
        full = registry.run_spec(spec)
        hybrid = registry.run_spec(ExperimentSpec.from_dict(
            {**spec.to_dict(), "fidelity": "hybrid"}))
        _rows_differ_identical(full.rows, hybrid.rows, experiment_id)
