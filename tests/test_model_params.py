"""Parameter counting for the GPT-2-like model."""

import pytest

from repro.errors import ConfigurationError
from repro.model import (
    ModelConfig,
    count_parameters,
    layer_parameters,
    layers_for_target_params,
    paper_model,
    total_parameters,
)


class TestConfig:
    def test_paper_defaults(self):
        m = paper_model(26)
        assert m.hidden_size == 2048
        assert m.num_heads == 16
        assert m.seq_length == 256
        assert m.max_position_embeddings == 1024

    def test_head_dim(self):
        assert paper_model(1).head_dim == 128

    def test_ffn_hidden(self):
        assert paper_model(1).ffn_hidden == 4 * 2048

    def test_with_layers(self):
        m = paper_model(4).with_layers(8)
        assert m.num_layers == 8
        assert m.hidden_size == 2048

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ModelConfig(num_layers=0)
        with pytest.raises(ConfigurationError):
            ModelConfig(num_layers=1, hidden_size=100, num_heads=16)
        with pytest.raises(ConfigurationError):
            ModelConfig(num_layers=1, seq_length=4096)


class TestCounts:
    def test_layer_parameters_formula(self):
        m = paper_model(1)
        h = m.hidden_size
        assert layer_parameters(m) == 12 * h * h + 13 * h

    def test_paper_sizes(self):
        """The paper's model-size grid maps onto layer counts."""
        assert total_parameters(paper_model(26)) == pytest.approx(1.4e9, rel=0.02)
        assert total_parameters(paper_model(107)) == pytest.approx(5.5e9, rel=0.01)
        assert total_parameters(paper_model(225)) == pytest.approx(11.4e9, rel=0.01)
        assert total_parameters(paper_model(660)) == pytest.approx(33.3e9, rel=0.01)

    def test_breakdown_sums_to_total(self):
        breakdown = count_parameters(paper_model(10))
        assert breakdown.total == total_parameters(paper_model(10))

    def test_monotone_in_layers(self):
        sizes = [total_parameters(paper_model(n)) for n in (1, 2, 4, 8)]
        assert sizes == sorted(sizes)
        deltas = [b - a for a, b in zip(sizes, sizes[1:])]
        assert deltas[0] == pytest.approx(layer_parameters(paper_model(1)))

    def test_tied_embeddings_no_lm_head(self):
        breakdown = count_parameters(paper_model(2))
        assert breakdown.lm_head == 0

    def test_untied_adds_head(self):
        m = ModelConfig(num_layers=2, tied_embeddings=False)
        breakdown = count_parameters(m)
        assert breakdown.lm_head == m.vocab_size * m.hidden_size


class TestLayersForTarget:
    @pytest.mark.parametrize("billions,expected_layers", [
        (1.4, 26), (5.49, 107), (11.4, 225), (33.3, 660),
    ])
    def test_round_trip(self, billions, expected_layers):
        layers = layers_for_target_params(paper_model(1), billions * 1e9)
        assert layers == expected_layers

    def test_result_meets_target(self):
        for billions in (0.7, 2.9, 8.5, 20.6):
            layers = layers_for_target_params(paper_model(1), billions * 1e9)
            assert total_parameters(paper_model(layers)) >= billions * 1e9
            assert total_parameters(paper_model(layers - 1)) < billions * 1e9

    def test_tiny_target_gives_one_layer(self):
        assert layers_for_target_params(paper_model(1), 1.0) == 1
