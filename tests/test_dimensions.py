"""Dimensional-analysis engine: lattice algebra, planted-bug fixtures,
no-false-positive corpus, and the tree-clean gate for the real source.

Each planted-bug fixture is a tiny module with exactly one unit slip the
paper's bandwidth math could realistically suffer (ms added to seconds,
GB-vs-GiB capacity, bytes compared to bytes/s, ...); the engine must
catch each with its distinct ``DIM0xx`` code and stay silent on the
correct-code corpus.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_dimensions, code_owners, load_baseline
from repro.analysis.dimensions import (
    BYTES,
    BYTES_PER_S,
    DIMENSIONLESS,
    TIME,
    UNKNOWN,
    Dim,
    analyze_tree,
)
from repro.analysis.dimensions.lattice import (
    BYTES_BINARY,
    BYTES_DECIMAL,
    parse_dim,
)


def _analyze(tmp_path, source, name="mod.py"):
    (tmp_path / name).write_text(textwrap.dedent(source))
    return analyze_tree(tmp_path)


def _codes(findings):
    return [f.code for f in findings]


# ---------------------------------------------------------------------------
# Lattice algebra
# ---------------------------------------------------------------------------

class TestLattice:
    def test_mul_div_compose_exponents(self):
        assert BYTES.div(TIME) == BYTES_PER_S
        assert BYTES_PER_S.mul(TIME) == BYTES
        assert BYTES.div(BYTES) == DIMENSIONLESS

    def test_unknown_absorbs(self):
        assert BYTES.mul(UNKNOWN) == UNKNOWN
        assert UNKNOWN.div(TIME) == UNKNOWN
        assert BYTES.join(UNKNOWN) == UNKNOWN

    def test_join_widens_on_mismatch(self):
        assert BYTES.join(TIME) == UNKNOWN
        assert BYTES.join(BYTES) == BYTES

    def test_compatibility_is_exponent_equality(self):
        assert BYTES.compatible(BYTES_DECIMAL)
        assert not BYTES.compatible(TIME)
        # unknown is compatible with everything: never a finding
        assert UNKNOWN.compatible(BYTES)

    def test_scale_conflict_only_between_flavors(self):
        assert BYTES_DECIMAL.scale_conflict(BYTES_BINARY)
        assert not BYTES_DECIMAL.scale_conflict(BYTES)
        assert not BYTES_DECIMAL.scale_conflict(BYTES_DECIMAL)

    def test_rescale_cancels_flavor(self):
        # x * GB / GIB is a legitimate conversion, not a conflict.
        rescaled = DIMENSIONLESS.mul(BYTES_DECIMAL).div(BYTES_BINARY)
        assert rescaled == DIMENSIONLESS
        assert not rescaled.scale_conflict(BYTES_BINARY)

    def test_pow_scales_exponents(self):
        assert TIME.pow(2) == Dim((0, 2, 0))
        assert BYTES_PER_S.pow(-1) == Dim((-1, 1, 0))

    def test_str_rendering(self):
        assert str(BYTES_PER_S) == "bytes/s"
        assert str(TIME) == "s"
        assert str(UNKNOWN) == "unknown"
        assert str(DIMENSIONLESS) == "dimensionless"

    def test_parse_dim_roundtrip(self):
        for dim in (BYTES, TIME, BYTES_PER_S, DIMENSIONLESS, UNKNOWN):
            assert parse_dim(str(dim)) == dim


# ---------------------------------------------------------------------------
# Planted-bug fixtures: one distinct DIM code each
# ---------------------------------------------------------------------------

class TestPlantedBugs:
    def test_dim001_ms_added_to_bytes(self, tmp_path):
        findings = _analyze(tmp_path, """
            from repro.units import MS, Bytes

            def budget(num_bytes: Bytes) -> float:
                return num_bytes + 5 * MS
            """)
        assert _codes(findings) == ["DIM001"]
        assert "bytes" in findings[0].message and "s" in findings[0].message

    def test_dim001_interprocedural_through_helper(self, tmp_path):
        # The ms-vs-s slip only becomes visible through the *inferred*
        # return dimension of an unannotated helper.
        findings = _analyze(tmp_path, """
            from repro.units import MS, Bytes, Seconds

            def checkpoint_pause():
                return 30 * MS

            def total(num_bytes: Bytes):
                return num_bytes + checkpoint_pause()
            """)
        assert _codes(findings) == ["DIM001"]
        assert findings[0].subject == "total"

    def test_dim002_bytes_compared_to_rate(self, tmp_path):
        findings = _analyze(tmp_path, """
            from repro.units import Bytes, BytesPerSecond

            def saturated(num_bytes: Bytes, bw: BytesPerSecond) -> bool:
                return num_bytes > bw
            """)
        assert _codes(findings) == ["DIM002"]

    def test_dim003_gb_vs_gib_capacity(self, tmp_path):
        findings = _analyze(tmp_path, """
            from repro.units import GB, GIB

            def fits() -> bool:
                capacity = 40 * GB   # A100 marketing capacity, decimal
                resident = 38 * GIB  # allocator numbers, binary
                return resident < capacity
            """)
        assert _codes(findings) == ["DIM003"]
        assert "7 %" in findings[0].message

    def test_dim004_bytes_into_gbps_helper(self, tmp_path):
        findings = _analyze(tmp_path, """
            from repro.units import Bytes, gbps

            def rate(num_bytes: Bytes) -> float:
                return gbps(num_bytes)
            """)
        assert _codes(findings) == ["DIM004"]

    def test_dim004_annotated_callee_argument(self, tmp_path):
        findings = _analyze(tmp_path, """
            from repro.units import Bytes, Seconds

            def stream_time(num_bytes: Bytes, window: Seconds) -> Seconds:
                return window

            def caller(duration: Seconds):
                return stream_time(duration, duration)
            """)
        assert _codes(findings) == ["DIM004"]
        assert "num_bytes" in findings[0].message

    def test_dim005_return_contradicts_annotation(self, tmp_path):
        findings = _analyze(tmp_path, """
            from repro.units import Bytes, Seconds

            def transfer_time(num_bytes: Bytes) -> Seconds:
                return num_bytes
            """)
        assert _codes(findings) == ["DIM005"]

    def test_dim006_ledger_charge_with_bytes_as_end(self, tmp_path):
        findings = _analyze(tmp_path, """
            from repro.units import Bytes, Seconds

            def charge(ledger, start: Seconds, num_bytes: Bytes):
                ledger.record(start, num_bytes, num_bytes)
            """)
        assert _codes(findings) == ["DIM006"]

    def test_dim006_schedule_at_with_bytes(self, tmp_path):
        findings = _analyze(tmp_path, """
            from repro.units import Bytes

            def kick(engine, num_bytes: Bytes):
                engine.schedule_at(num_bytes, None)
            """)
        assert _codes(findings) == ["DIM006"]

    def test_dim006_counter_track_vocabulary(self, tmp_path):
        findings = _analyze(tmp_path, """
            def track(CounterTrack):
                return CounterTrack(name="hbm", unit="gigabytes")
            """)
        assert _codes(findings) == ["DIM006"]
        assert "gigabytes" in findings[0].message

    def test_each_planted_code_is_distinct_and_owned(self, tmp_path):
        owners = code_owners()
        for code in ("DIM001", "DIM002", "DIM003", "DIM004", "DIM005",
                     "DIM006"):
            assert owners[code] == "dim-flow", code
        for code in ("DIM010", "DIM011"):
            assert owners[code] == "dim-vocabulary", code


# ---------------------------------------------------------------------------
# Flow sensitivity and propagation mechanics
# ---------------------------------------------------------------------------

class TestPropagation:
    def test_division_composes_bandwidth(self, tmp_path):
        # bytes / (bytes/s) = s: accepted against the Seconds annotation.
        findings = _analyze(tmp_path, """
            from repro.units import Bytes, BytesPerSecond, Seconds

            def transfer_time(num_bytes: Bytes,
                              bw: BytesPerSecond) -> Seconds:
                return num_bytes / bw
            """)
        assert findings == []

    def test_branch_join_widens_to_unknown(self, tmp_path):
        # x is bytes on one path, seconds on the other: the merge is
        # UNKNOWN, and using it afterwards must NOT flag.
        findings = _analyze(tmp_path, """
            from repro.units import GB, MS, Seconds

            def weird(flag, t: Seconds):
                x = 1 * GB if flag else 5 * MS
                return x + t
            """)
        assert findings == []

    def test_augmented_assignment_checked(self, tmp_path):
        findings = _analyze(tmp_path, """
            from repro.units import MS, Bytes

            def accumulate(num_bytes: Bytes):
                total = num_bytes
                total += 5 * MS
                return total
            """)
        assert _codes(findings) == ["DIM001"]

    def test_annotated_instance_attribute_propagates(self, tmp_path):
        findings = _analyze(tmp_path, """
            from repro.units import Bytes, Seconds

            class Clock:
                def __init__(self):
                    self.now: Seconds = 0.0

            def bad(clock, num_bytes: Bytes):
                return clock.now + num_bytes
            """)
        assert _codes(findings) == ["DIM001"]

    def test_units_module_alias_spelling(self, tmp_path):
        findings = _analyze(tmp_path, """
            from repro import units

            def bad():
                return 2 * units.GB + 3 * units.MS
            """)
        assert _codes(findings) == ["DIM001"]


# ---------------------------------------------------------------------------
# No-false-positive corpus: correct code must stay silent
# ---------------------------------------------------------------------------

class TestNoFalsePositives:
    CORRECT_CORPUS = """
        from repro.units import (
            GB, GIB, MS, SECOND, Bytes, BytesPerSecond, Scalar, Seconds,
            gbps, to_gbps, to_gb,
        )

        def transfer_time(num_bytes: Bytes, bw: BytesPerSecond,
                          latency: Seconds) -> Seconds:
            return latency + num_bytes / bw

        def effective_rate(num_bytes: Bytes, elapsed: Seconds,
                           efficiency: Scalar) -> BytesPerSecond:
            return num_bytes / elapsed * efficiency

        def report(bw: BytesPerSecond) -> float:
            return to_gbps(bw)

        def rescale(capacity_gb: Scalar) -> float:
            # decimal -> binary conversion: flavors cancel, no conflict
            return capacity_gb * GB / GIB

        def settle(ledger, start: Seconds, end: Seconds,
                   num_bytes: Bytes) -> None:
            ledger.record(start, end, num_bytes)

        def pace(engine, delay: Seconds):
            engine.timeout(delay)
            engine.schedule_at(engine.now + delay, None)

        def thresholds(t: Seconds) -> bool:
            # comparisons against bare literals are never unit errors
            return t > 0 and t < 100

        def mixed_arith(num_bytes: Bytes) -> Bytes:
            return max(num_bytes, 0.0) * 2 + num_bytes / 4

        def string_handling(label, names):
            # receivers with same-named unrelated methods stay silent:
            # record(name, passed) has 2 positional args, outside the
            # ledger contract's arity window.
            names.record(label, True)
            return len(names)
    """

    def test_correct_corpus_is_silent(self, tmp_path):
        findings = _analyze(tmp_path, self.CORRECT_CORPUS)
        assert findings == [], [
            f"{f.code} {f.location}: {f.message}" for f in findings
        ]

    def test_unannotated_code_is_silent(self, tmp_path):
        # Plain untyped arithmetic must never flag, whatever it mixes.
        findings = _analyze(tmp_path, """
            def mystery(a, b, c):
                return a + b * c - a / b
            """)
        assert findings == []


# ---------------------------------------------------------------------------
# The real tree
# ---------------------------------------------------------------------------

class TestOwnTree:
    def test_own_tree_is_clean_modulo_baseline(self):
        report = analyze_dimensions()
        baseline = load_baseline(
            Path(__file__).parent.parent / "analysis-baseline.json")
        kept = [
            f for f in report.findings
            if not any(entry.matches(f) for entry in baseline)
        ]
        assert kept == [], [
            f"{f.code} {f.location}: {f.message}" for f in kept
        ]

    def test_legacy_baseline_codes_migrate(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            '{"version": 1, "accepted": ['
            '{"code": "SRC001", "file": "a.py"},'
            '{"code": "SRC002", "file": "b.py"},'
            '{"code": "DET001", "file": "c.py"}]}'
        )
        entries = load_baseline(path)
        assert [e.code for e in entries] == ["DIM010", "DIM011", "DET001"]

    def test_hot_signatures_carry_dimensions(self):
        # The paper's bandwidth math must actually be inside the checked
        # universe: spot-check that the engine infers real dimensions
        # for the hot paths, rather than silently knowing nothing.
        from repro.analysis.dimensions.engine import DimensionAnalyzer
        import repro

        analyzer = DimensionAnalyzer(Path(repro.__file__).parent)
        analyzer.infer()
        by_name = analyzer.program.by_name

        def return_dim(name):
            dims = {fn.return_dim for fn in by_name[name]}
            assert len(dims) == 1, f"{name} resolves ambiguously"
            return dims.pop()

        assert return_dim("transfer_time") == TIME
        assert return_dim("gemm_time") == TIME
        assert return_dim("memory_bound_time") == TIME
        assert str(return_dim("bandwidth")) == "bytes/s"
        attr_dims = analyzer.program.attr_dims
        assert attr_dims["now"] == TIME
        assert attr_dims["num_bytes"] == BYTES
        assert str(attr_dims["hbm_bandwidth"]) == "bytes/s"
