"""Tracing must be an observer: no headline metric may move.

The recorder hooks only append to Python lists — they never post engine
events — so a traced run must produce bit-identical headline metrics
(iteration times, TFLOP/s, every ledger's record count and byte total)
to an untraced one, under the FIFO schedule and under the DET120
perturbation orders alike.
"""

import pytest

from repro.analysis.determinism.differ import headline_fields
from repro.core.runner import run_training
from repro.core.search import model_for_billions
from repro.experiments.common import make_strategy
from repro.faults.plan import FaultPlan
from repro.hardware.presets import dual_node_cluster
from repro.sim.engine import ReversedTies
from repro.trace import reconcile_findings, to_chrome, validate_chrome_trace


def run_once(trace, tie_order=None):
    cluster = dual_node_cluster()
    metrics = run_training(cluster, make_strategy("ddp"),
                           model_for_billions(0.7), iterations=2,
                           tie_order=tie_order, trace=trace)
    return cluster, metrics


class TestTracingInvariance:
    def test_headline_fields_identical_with_tracing_on(self, traced_ddp):
        traced_cluster, traced_metrics = traced_ddp
        cluster, metrics = run_once(trace=False)
        # Exact comparison, no rounding: the recorder must not move a
        # single float anywhere in the run.
        assert headline_fields(traced_metrics, traced_cluster) \
            == headline_fields(metrics, cluster)

    def test_invariance_holds_under_perturbed_tie_order(self):
        base_cluster, untraced = run_once(trace=False,
                                          tie_order=ReversedTies())
        cluster, traced = run_once(trace=True, tie_order=ReversedTies())
        assert headline_fields(traced, cluster) \
            == headline_fields(untraced, base_cluster)

    def test_fig5_render_identical_with_tracing_on(self, traced_ddp):
        _, traced_metrics = traced_ddp
        _, metrics = run_once(trace=False)
        window = (0.0, traced_metrics.execution.total_time)
        assert traced_metrics.execution.timeline.render(0, window=window) \
            == metrics.execution.timeline.render(0, window=window)

    def test_trace_present_only_when_requested(self, traced_ddp):
        _, traced_metrics = traced_ddp
        _, metrics = run_once(trace=False)
        assert traced_metrics.trace is not None
        assert metrics.trace is None

    def test_trace_meta_describes_the_run(self, traced_ddp):
        _, metrics = traced_ddp
        meta = metrics.trace.meta
        assert meta["strategy"] == "ddp"
        assert meta["num_gpus"] == 8
        assert meta["iterations"] == 2
        assert meta["total_time"] == pytest.approx(
            metrics.execution.total_time
        )

    def test_fault_free_run_has_no_fault_spans(self, traced_ddp):
        _, metrics = traced_ddp
        assert metrics.trace.faults == []


class TestFaultedTrace:
    def test_injected_fault_windows_become_fault_spans(self):
        plan = FaultPlan.parse(
            ["node0.nic0:degrade@t=2ms,dur=40ms,mag=0.5"], seed=7)
        cluster = dual_node_cluster()
        metrics = run_training(cluster, make_strategy("zero3"),
                               model_for_billions(0.7), iterations=2,
                               fault_plan=plan, trace=True)
        trace = metrics.trace
        assert [(f.kind, f.target) for f in trace.faults] \
            == [("degrade", "node0/nic0")]
        assert trace.faults[0].start == pytest.approx(0.002)
        assert trace.faults[0].end == pytest.approx(0.042)
        assert trace.faults[0].magnitude == pytest.approx(0.5)
        # A degraded run still exports validly and reconciles exactly,
        # and the degraded ledger stamps survive into the link accounts.
        assert validate_chrome_trace(to_chrome(trace)) == []
        assert reconcile_findings(trace, cluster) == []
        assert any(account.degraded for account in trace.links)
