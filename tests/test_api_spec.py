"""The canonical RunSpec / ExperimentSpec API and its cache-key contract."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api import RunSpec, canonical_json, default_salt, run_spec, stable_key
from repro.core.results import load_run_spec, metrics_to_dict
from repro.errors import ConfigurationError
from repro.experiments.common import ExperimentSpec

SRC = str(Path(__file__).resolve().parent.parent / "src")


class TestRunSpecValidation:
    def test_needs_exactly_one_size_field(self):
        with pytest.raises(ConfigurationError):
            RunSpec(strategy="ddp")
        with pytest.raises(ConfigurationError):
            RunSpec(strategy="ddp", size_billions=1.4, num_layers=24)

    def test_rejects_bad_tie_order(self):
        with pytest.raises(ConfigurationError):
            RunSpec(strategy="ddp", size_billions=1.4, tie_order="random")

    def test_rejects_warmup_at_or_above_iterations(self):
        with pytest.raises(ConfigurationError):
            RunSpec(strategy="ddp", size_billions=1.4,
                    iterations=2, warmup_iterations=2)

    def test_faults_normalized_to_tuple(self):
        spec = RunSpec(strategy="ddp", size_billions=1.4,
                       faults=["switch0:degrade@t=1ms,dur=1ms,mag=0.5"])
        assert isinstance(spec.faults, tuple)

    def test_label(self):
        spec = RunSpec(strategy="zero2", size_billions=1.4)
        assert spec.label == "zero2-1.4b-n1-B"


class TestRoundTrip:
    def test_to_dict_from_dict_identity(self):
        spec = RunSpec(strategy="zero3", size_billions=6.0, nodes=2,
                       iterations=5, faults=("switch0:down@t=1ms,dur=1ms",),
                       tie_order="seeded", tie_seed=11)
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        payload = RunSpec(strategy="ddp", size_billions=1.4).to_dict()
        payload["warp_factor"] = 9
        with pytest.raises(ConfigurationError) as err:
            RunSpec.from_dict(payload)
        assert "warp_factor" in str(err.value)

    def test_json_round_trip(self):
        spec = RunSpec(strategy="zero2", size_billions=1.4, sanitize=True)
        reloaded = RunSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert reloaded == spec

    def test_experiment_spec_round_trip(self):
        spec = ExperimentSpec.full("fig7", iterations=12)
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ConfigurationError):
            ExperimentSpec.from_dict({"experiment_id": "fig7", "bogus": 1})

    def test_replace(self):
        spec = RunSpec(strategy="ddp", size_billions=1.4)
        other = spec.replace(nodes=2)
        assert other.nodes == 2 and spec.nodes == 1
        assert other.cache_key() != spec.cache_key()

    def test_replace_revalidates(self):
        """Regression: replace() must re-run __post_init__ validation,
        never hand back an invalid spec."""
        spec = RunSpec(strategy="ddp", size_billions=1.4)
        with pytest.raises(ConfigurationError):
            spec.replace(iterations=0)
        with pytest.raises(ConfigurationError):
            spec.replace(fidelity="approximate")
        with pytest.raises(ConfigurationError):
            spec.replace(size_billions=None)  # neither size nor layers

    def test_replace_rejects_unknown_fields(self):
        spec = RunSpec(strategy="ddp", size_billions=1.4)
        with pytest.raises(ConfigurationError, match="warp_factor"):
            spec.replace(warp_factor=9)


class TestCacheKey:
    def test_key_ignores_dict_ordering(self):
        spec = RunSpec(strategy="zero2", size_billions=1.4)
        payload = spec.to_dict()
        shuffled = dict(reversed(list(payload.items())))
        assert (RunSpec.from_dict(shuffled).cache_key()
                == spec.cache_key())
        assert (stable_key({"kind": "run", "spec": shuffled})
                == stable_key({"kind": "run", "spec": payload}))

    def test_key_differs_by_field(self):
        a = RunSpec(strategy="zero2", size_billions=1.4)
        assert a.cache_key() != a.replace(iterations=4).cache_key()
        assert a.cache_key() != a.replace(strategy="zero3").cache_key()

    def test_salt_invalidates(self):
        spec = RunSpec(strategy="zero2", size_billions=1.4)
        assert (spec.cache_key(salt="v1") != spec.cache_key(salt="v2"))
        assert spec.cache_key() == spec.cache_key(salt=default_salt())

    def test_run_and_experiment_keys_never_collide(self):
        # The kind wrapper keeps the two spec namespaces disjoint.
        run_key = RunSpec(strategy="ddp", size_billions=1.4).cache_key()
        exp_key = ExperimentSpec.quick("fig1").cache_key()
        assert run_key != exp_key

    def test_key_stable_across_process_restart(self):
        spec = RunSpec(strategy="zero3", size_billions=6.0, nodes=2)
        expected = spec.cache_key()
        script = (
            "import json, sys\n"
            "from repro.api import RunSpec\n"
            "payload = json.loads(sys.stdin.read())\n"
            "print(RunSpec.from_dict(payload).cache_key())\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            input=json.dumps(spec.to_dict()), capture_output=True,
            text=True, check=True, env={"PYTHONPATH": SRC, "PATH": ""},
        )
        assert out.stdout.strip() == expected

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            canonical_json({"x": float("nan")})


class TestRunSpecExecution:
    def test_run_spec_stamps_metrics(self):
        spec = RunSpec(strategy="ddp", size_billions=0.7, iterations=2)
        metrics = run_spec(spec)
        assert metrics.spec == spec
        payload = metrics_to_dict(metrics)
        assert load_run_spec(payload) == spec

    def test_run_spec_matches_kwarg_shim(self):
        from repro.core.runner import run_training
        from repro.core.search import model_for_billions
        from repro.experiments.common import cluster_for, make_strategy

        spec = RunSpec(strategy="zero2", size_billions=1.4, iterations=3)
        via_spec = run_spec(spec)
        via_kwargs = run_training(cluster_for(1), make_strategy("zero2"),
                                  model_for_billions(1.4), iterations=3)
        assert via_spec.tflops == via_kwargs.tflops
        assert via_spec.iteration_time == via_kwargs.iteration_time

    def test_unknown_strategy_fails_cleanly(self):
        spec = RunSpec(strategy="zorro9", size_billions=1.4)
        with pytest.raises(ConfigurationError):
            run_spec(spec)
