"""The example scripts stay runnable (smoke tests)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name, *args, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )


def test_examples_directory_complete():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert "quickstart.py" in names
    assert len(names) >= 3  # quickstart + domain scenarios


def test_quickstart_runs():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "TFLOP/s" in result.stdout
    assert "NVLink" in result.stdout


def test_train_language_model_runs():
    result = run_example("train_language_model.py", "--articles", "400",
                         "--epochs", "1")
    assert result.returncode == 0, result.stderr
    assert "tokens/s" in result.stdout


def test_compare_strategies_single_node():
    result = run_example("compare_strategies.py", "--nodes", "1",
                         "--iterations", "2", timeout=400)
    assert result.returncode == 0, result.stderr
    assert "ZeRO-2" in result.stdout


def test_reproduce_paper_single_artifact():
    result = run_example("reproduce_paper.py", "--only", "table1")
    assert result.returncode == 0, result.stderr
    assert "ZeRO stage" in result.stdout


@pytest.mark.parametrize("name", [
    "consolidate_to_one_node.py",
    "nvme_placement_tuning.py",
    "reproduce_paper.py",
    "compare_strategies.py",
    "train_language_model.py",
])
def test_help_texts(name):
    if name == "consolidate_to_one_node.py":
        pytest.skip("no CLI flags; exercised by the consolidation bench")
    result = run_example(name, "--help", timeout=60)
    assert result.returncode == 0
