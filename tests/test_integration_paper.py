"""Integration: the paper's headline findings reproduce end-to-end.

These are the claims from the paper's abstract and "major insights"
(Section I), checked against full simulated training runs.  Tolerances
are loose — the simulator targets shape, not testbed-exact numbers.
"""

import pytest

from repro.core.runner import run_training
from repro.core.search import max_model_size, model_for_billions
from repro.hardware import dual_node_cluster, single_node_cluster
from repro.hardware.link import LinkClass
from repro.model.config import paper_model
from repro.parallel import (
    DdpStrategy,
    MegatronStrategy,
    zero1,
    zero2,
    zero2_cpu_offload,
    zero3,
    zero3_nvme_optimizer_params,
)


def throughput_at_max(cluster, strategy, iterations=3):
    search = max_model_size(cluster, strategy)
    metrics = run_training(cluster, strategy, paper_model(search.max_layers),
                           iterations=iterations)
    return search, metrics


@pytest.fixture(scope="module")
def single_results():
    cluster = single_node_cluster()
    return {
        name: throughput_at_max(cluster, factory())
        for name, factory in [("ddp", DdpStrategy), ("megatron", MegatronStrategy),
                              ("zero1", zero1), ("zero2", zero2),
                              ("zero3", zero3)]
    }


@pytest.fixture(scope="module")
def dual_results():
    cluster = dual_node_cluster()
    return {
        name: throughput_at_max(cluster, factory())
        for name, factory in [("ddp", DdpStrategy), ("megatron", MegatronStrategy),
                              ("zero1", zero1), ("zero2", zero2),
                              ("zero3", zero3)]
    }


class TestSingleNodeInsights:
    def test_ddp_fastest_but_smallest(self, single_results):
        ddp_search, ddp_metrics = single_results["ddp"]
        for name in ("megatron", "zero1", "zero3"):
            search, metrics = single_results[name]
            assert ddp_metrics.tflops > metrics.tflops
            assert search.max_parameters > 2.5 * ddp_search.max_parameters

    def test_megatron_fits_about_4x_ddp(self, single_results):
        ddp_search, _ = single_results["ddp"]
        meg_search, _ = single_results["megatron"]
        ratio = meg_search.max_parameters / ddp_search.max_parameters
        assert 3.0 <= ratio <= 4.5  # paper: "almost four times"

    def test_zero3_fits_about_20pct_more_than_megatron(self, single_results):
        meg, _ = single_results["megatron"]
        z3, _ = single_results["zero3"]
        ratio = z3.max_parameters / meg.max_parameters
        assert 1.1 <= ratio <= 1.4  # paper: 20 % larger

    def test_zero_sizes_bracket_megatron(self, single_results):
        """Paper: ZeRO fits 0.8x-1.2x the Megatron-LM size."""
        meg, _ = single_results["megatron"]
        for name in ("zero1", "zero2", "zero3"):
            search, _ = single_results[name]
            assert 0.75 <= search.max_parameters / meg.max_parameters <= 1.3

    def test_zero2_is_single_node_sweet_spot(self, single_results):
        _, z2 = single_results["zero2"]
        _, meg = single_results["megatron"]
        assert z2.tflops > 1.3 * meg.tflops  # paper: 58 % higher

    def test_megatron_nvlink_about_3x_ddp(self, single_results):
        _, ddp = single_results["ddp"]
        _, meg = single_results["megatron"]
        ratio = (meg.bandwidth[LinkClass.NVLINK].average
                 / ddp.bandwidth[LinkClass.NVLINK].average)
        assert 2.0 <= ratio <= 4.5  # paper: ~300 % more

    def test_throughputs_match_paper_within_20pct(self, single_results):
        paper = {"ddp": 438, "megatron": 331, "zero1": 391, "zero2": 524,
                 "zero3": 381}
        for name, (search, metrics) in single_results.items():
            assert metrics.tflops == pytest.approx(paper[name], rel=0.20)


class TestDualNodeInsights:
    def test_megatron_collapses_across_nodes(self, dual_results):
        _, ddp = dual_results["ddp"]
        _, meg = dual_results["megatron"]
        assert meg.tflops < 0.3 * ddp.tflops  # paper: 0.19x

    def test_zero_beats_megatron_3x_or_more(self, dual_results):
        _, meg = dual_results["megatron"]
        for name in ("zero1", "zero2", "zero3"):
            _, metrics = dual_results[name]
            assert metrics.tflops > 2.8 * meg.tflops  # paper: 3.26-3.78x

    def test_megatron_fits_about_8x_ddp(self, dual_results):
        ddp, _ = dual_results["ddp"]
        meg, _ = dual_results["megatron"]
        ratio = meg.max_parameters / ddp.max_parameters
        assert 6.0 <= ratio <= 9.0  # paper: eight times

    def test_ddp_size_unchanged_by_second_node(self, dual_results,
                                               single_results):
        assert (dual_results["ddp"][0].max_parameters
                == single_results["ddp"][0].max_parameters)

    def test_zero3_keeps_throughput_while_doubling_model(self,
                                                         dual_results,
                                                         single_results):
        single_search, single_metrics = single_results["zero3"]
        dual_search, dual_metrics = dual_results["zero3"]
        assert dual_search.max_parameters > 1.7 * single_search.max_parameters
        assert dual_metrics.tflops > 0.9 * single_metrics.tflops

    def test_throughputs_match_paper_within_25pct(self, dual_results):
        paper = {"ddp": 640, "megatron": 121, "zero1": 395, "zero2": 424,
                 "zero3": 458}
        for name, (search, metrics) in dual_results.items():
            assert metrics.tflops == pytest.approx(paper[name], rel=0.25)


class TestOffloadInsights:
    def test_consolidation_beats_dual_node_megatron(self, dual_results):
        """Paper: ZeRO-Offload on one node gives ~1.58x dual Megatron."""
        _, meg_dual = dual_results["megatron"]
        cluster = single_node_cluster()
        metrics = run_training(cluster, zero2_cpu_offload(),
                               model_for_billions(11.4), iterations=3)
        assert metrics.tflops > 1.3 * meg_dual.tflops

    def test_infinity_fits_6x_megatron_single_node(self, single_results):
        meg, _ = single_results["megatron"]
        cluster = single_node_cluster()
        search = max_model_size(cluster, zero3_nvme_optimizer_params())
        assert search.max_parameters > 5 * meg.max_parameters

    def test_zero2_offload_fits_about_3x_single_node_megatron(
            self, single_results):
        meg, _ = single_results["megatron"]
        cluster = single_node_cluster()
        search = max_model_size(cluster, zero2_cpu_offload())
        ratio = search.max_parameters / meg.max_parameters
        assert 2.0 <= ratio <= 3.2  # paper: "almost three times"
