"""Model-state partitioning and the Table I capability matrix."""

import pytest

from repro.errors import CapabilityError, ConfigurationError
from repro.model.states import (
    GRAD_BYTES,
    OPTIM_BYTES,
    PARAM_BYTES,
    TOTAL_STATE_BYTES,
    OffloadTarget,
    ZeroStage,
    model_parallel_states,
    replicated_states,
    validate_offload,
    zero_states,
)

P = 1e9  # one billion parameters


class TestByteConstants:
    def test_mixed_precision_is_16_bytes(self):
        assert TOTAL_STATE_BYTES == 16.0
        assert PARAM_BYTES == 2.0
        assert GRAD_BYTES == 2.0
        assert OPTIM_BYTES == 12.0


class TestReplicated:
    def test_ddp_holds_everything(self):
        placement = replicated_states(P)
        assert placement.gpu_total == pytest.approx(16 * P)
        assert placement.cpu_total == 0.0
        assert placement.nvme_total == 0.0


class TestModelParallel:
    def test_split_by_degree(self):
        placement = model_parallel_states(P, 4)
        assert placement.gpu_total == pytest.approx(4 * P)

    def test_degree_one_is_replicated(self):
        assert (model_parallel_states(P, 1).gpu_total
                == replicated_states(P).gpu_total)

    def test_invalid_degree(self):
        with pytest.raises(ConfigurationError):
            model_parallel_states(P, 0)


class TestZeroStages:
    def test_stage1_partitions_optimizer_only(self):
        placement = zero_states(P, ZeroStage.OPTIMIZER, 4)
        assert placement.gpu_params == pytest.approx(2 * P)
        assert placement.gpu_grads == pytest.approx(2 * P)
        assert placement.gpu_optimizer == pytest.approx(3 * P)

    def test_stage2_also_partitions_gradients(self):
        placement = zero_states(P, ZeroStage.GRADIENTS, 4)
        assert placement.gpu_grads == pytest.approx(0.5 * P)

    def test_stage3_partitions_everything(self):
        placement = zero_states(P, ZeroStage.PARAMETERS, 4)
        assert placement.gpu_total == pytest.approx(4 * P)

    def test_paper_memory_reduction_claims(self):
        """ZeRO's published limits: 4x (stage 1), 8x (stage 2), and
        linear-in-DP (stage 3) memory reduction as DP grows."""
        dp = 4096
        base = replicated_states(P).gpu_total
        z1 = zero_states(P, ZeroStage.OPTIMIZER, dp).gpu_total
        z2 = zero_states(P, ZeroStage.GRADIENTS, dp).gpu_total
        z3 = zero_states(P, ZeroStage.PARAMETERS, dp).gpu_total
        assert base / z1 == pytest.approx(4.0, rel=0.01)
        assert base / z2 == pytest.approx(8.0, rel=0.01)
        assert base / z3 == pytest.approx(dp, rel=0.01)

    def test_dp_one_is_no_partitioning(self):
        placement = zero_states(P, ZeroStage.PARAMETERS, 1)
        assert placement.gpu_total == pytest.approx(16 * P)

    def test_invalid_dp(self):
        with pytest.raises(ConfigurationError):
            zero_states(P, ZeroStage.OPTIMIZER, 0)


class TestOffloadPlacement:
    def test_cpu_offload_moves_optimizer(self):
        placement = zero_states(P, ZeroStage.GRADIENTS, 4,
                                optimizer_target=OffloadTarget.CPU)
        assert placement.gpu_optimizer == 0.0
        assert placement.cpu_optimizer == pytest.approx(3 * P)

    def test_cpu_offload_moves_gradients_host_side(self):
        placement = zero_states(P, ZeroStage.GRADIENTS, 4,
                                optimizer_target=OffloadTarget.CPU)
        assert placement.gpu_grads == 0.0
        assert placement.cpu_grads == pytest.approx(2 * 0.5 * P)

    def test_stage1_offload_keeps_gradient_backlog_on_gpu(self):
        placement = zero_states(P, ZeroStage.OPTIMIZER, 4,
                                optimizer_target=OffloadTarget.CPU)
        assert placement.gpu_grads == pytest.approx(0.75 * 2 * P)

    def test_nvme_offload_places_optimizer_on_nvme(self):
        placement = zero_states(P, ZeroStage.PARAMETERS, 4,
                                optimizer_target=OffloadTarget.NVME)
        assert placement.nvme_optimizer == pytest.approx(3 * P)
        assert placement.gpu_optimizer == 0.0

    def test_param_nvme_offload(self):
        placement = zero_states(P, ZeroStage.PARAMETERS, 4,
                                optimizer_target=OffloadTarget.NVME,
                                parameter_target=OffloadTarget.NVME)
        assert placement.nvme_params == pytest.approx(0.5 * P)
        assert placement.gpu_params == 0.0


class TestCapabilityMatrix:
    """Paper Table I."""

    def test_stage1_supports_cpu_optimizer_only(self):
        stage = ZeroStage.OPTIMIZER
        assert stage.supports_offload("optimizer", OffloadTarget.CPU)
        assert not stage.supports_offload("optimizer", OffloadTarget.NVME)
        assert not stage.supports_offload("parameter", OffloadTarget.CPU)

    def test_stage2_matches_stage1_offload(self):
        stage = ZeroStage.GRADIENTS
        assert stage.supports_offload("optimizer", OffloadTarget.CPU)
        assert not stage.supports_offload("parameter", OffloadTarget.NVME)

    def test_stage3_supports_everything(self):
        stage = ZeroStage.PARAMETERS
        for component in ("optimizer", "parameter"):
            for target in OffloadTarget:
                assert stage.supports_offload(component, target)

    def test_validate_offload_raises_capability_error(self):
        with pytest.raises(CapabilityError):
            validate_offload(ZeroStage.OPTIMIZER,
                             optimizer_target=OffloadTarget.NVME,
                             parameter_target=OffloadTarget.NONE)
        with pytest.raises(CapabilityError):
            validate_offload(ZeroStage.GRADIENTS,
                             optimizer_target=OffloadTarget.NONE,
                             parameter_target=OffloadTarget.CPU)

    def test_unknown_component_rejected(self):
        with pytest.raises(ConfigurationError):
            ZeroStage.PARAMETERS.supports_offload("banana", OffloadTarget.CPU)

    def test_stage_predicates(self):
        assert not ZeroStage.DISABLED.partitions_optimizer
        assert ZeroStage.OPTIMIZER.partitions_optimizer
        assert not ZeroStage.OPTIMIZER.partitions_gradients
        assert ZeroStage.GRADIENTS.partitions_gradients
        assert not ZeroStage.GRADIENTS.partitions_parameters
        assert ZeroStage.PARAMETERS.partitions_parameters


class TestConservation:
    @pytest.mark.parametrize("stage", [ZeroStage.OPTIMIZER,
                                       ZeroStage.GRADIENTS,
                                       ZeroStage.PARAMETERS])
    @pytest.mark.parametrize("dp", [1, 2, 4, 8])
    def test_no_offload_conserves_16_bytes_per_param_per_replica(self, stage, dp):
        placement = zero_states(P, stage, dp)
        partitioned = 0.0
        if stage.partitions_optimizer:
            partitioned += OPTIM_BYTES * P * (1 - 1 / dp)
        if stage.partitions_gradients:
            partitioned += GRAD_BYTES * P * (1 - 1 / dp)
        if stage.partitions_parameters:
            partitioned += PARAM_BYTES * P * (1 - 1 / dp)
        assert placement.total == pytest.approx(16 * P - partitioned)
