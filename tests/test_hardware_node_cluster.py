"""XE8545 node assembly and cluster wiring (paper Fig. 2, Table II)."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.hardware import (
    ClusterSpec,
    LinkClass,
    NodeSpec,
    dual_node_cluster,
    nvme_placement_node_spec,
    paper_node_spec,
    single_node_cluster,
)


@pytest.fixture(scope="module")
def dual():
    return dual_node_cluster()


class TestNodeInventory:
    def test_two_sockets(self, dual):
        node = dual.nodes[0]
        assert len(node.cpus) == 2
        assert len(node.drams) == 2

    def test_four_gpus_split_across_sockets(self, dual):
        node = dual.nodes[0]
        sockets = [gpu.socket_index for gpu in node.gpus]
        assert sockets == [0, 0, 1, 1]

    def test_two_nics_one_per_socket(self, dual):
        node = dual.nodes[0]
        assert [nic.socket_index for nic in node.nics] == [0, 1]
        assert node.nic_for_socket(1).name == "node0/nic1"

    def test_baseline_nvme_layout(self, dual):
        node = dual.nodes[0]
        sockets = [d.device.socket_index for d in node.nvme_drives]
        assert sockets == [0, 1, 1]  # OS drive + two scratch
        assert len(node.scratch_drives) == 2

    def test_nvlink_mesh_is_all_to_all(self, dual):
        links = [l for l in dual.topology.links_of_class(LinkClass.NVLINK)
                 if l.name.startswith("node0/")]
        assert len(links) == 6  # C(4,2) GPU pairs
        assert all(link.count == 4 for link in links)

    def test_dram_channels(self, dual):
        link = dual.topology.link_between("node0/cpu0", "node0/dram0")
        assert link.count == 8
        assert not link.spec.duplex

    def test_xgmi_links(self, dual):
        link = dual.topology.link_between("node0/cpu0", "node0/cpu1")
        assert link.count == 3
        assert link.link_class is LinkClass.XGMI

    def test_memory_totals(self, dual):
        node = dual.nodes[0]
        # 4x 40 GB GPUs minus framework reservation.
        assert node.total_gpu_memory() == pytest.approx(4 * 37.5e9)
        assert node.total_host_memory() == pytest.approx(1024e9)

    def test_gpu_socket_mapping(self):
        spec = paper_node_spec()
        assert [spec.gpu_socket(i) for i in range(4)] == [0, 0, 1, 1]


class TestClusterWiring:
    def test_single_node_has_no_switch(self):
        cluster = single_node_cluster()
        assert cluster.switch is None
        assert cluster.topology.links_of_class(LinkClass.ROCE) == []

    def test_dual_node_roce_links(self, dual):
        roce = dual.topology.links_of_class(LinkClass.ROCE)
        assert len(roce) == 4  # 2 NICs x 2 nodes

    def test_rank_mapping(self, dual):
        assert dual.gpu(0).name == "node0/gpu0"
        assert dual.gpu(5).name == "node1/gpu1"
        assert dual.num_gpus == 8

    def test_rank_out_of_range(self, dual):
        with pytest.raises(TopologyError):
            dual.gpu(8)
        with pytest.raises(TopologyError):
            dual.node_of_rank(-1)

    def test_dram_for_rank_follows_socket(self, dual):
        assert dual.dram_for_rank(0).name == "node0/dram0"
        assert dual.dram_for_rank(3).name == "node0/dram1"
        assert dual.dram_for_rank(6).name == "node1/dram1"

    def test_reset_clears_everything(self, dual):
        dual.gpu(0).memory.allocate("x", 1e9)
        route = dual.topology.route("node0/gpu0", "node0/gpu1")
        route.record(0.0, 1.0, 1e9)
        dual.reset()
        assert dual.gpu(0).memory.used_bytes == 0.0
        assert all(len(l.ledger) == 0 for l in dual.topology.links)

    def test_zero_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(num_nodes=0)

    def test_placement_node_spec(self):
        spec = nvme_placement_node_spec((0, 0, 1, 1))
        assert spec.nvme_sockets == (0, 0, 0, 1, 1)

    def test_bad_nvme_socket_rejected(self):
        with pytest.raises(ConfigurationError):
            NodeSpec(nvme_sockets=(0, 2))
