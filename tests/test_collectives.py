"""Collective primitives and the topology-aware NCCL communicator."""

import pytest

from repro.collectives import (
    CollectiveKind,
    CollectiveOp,
    NcclCommunicator,
    ring_step_count,
    ring_traffic_factor,
)
from repro.errors import ConfigurationError
from repro.hardware import dual_node_cluster, single_node_cluster
from repro.sim.engine import Engine
from repro.sim.flows import FlowNetwork


class TestRingMath:
    def test_all_reduce_factor(self):
        assert ring_traffic_factor(CollectiveKind.ALL_REDUCE, 4) == pytest.approx(1.5)

    def test_all_gather_factor(self):
        assert ring_traffic_factor(CollectiveKind.ALL_GATHER, 4) == pytest.approx(0.75)

    def test_reduce_scatter_factor(self):
        assert ring_traffic_factor(CollectiveKind.REDUCE_SCATTER, 8) == pytest.approx(7 / 8)

    def test_send_recv_factor(self):
        assert ring_traffic_factor(CollectiveKind.SEND_RECV, 8) == 1.0

    def test_single_rank_is_free(self):
        for kind in CollectiveKind:
            assert ring_traffic_factor(kind, 1) == 0.0
            assert ring_step_count(kind, 1) == 0

    def test_all_reduce_steps(self):
        assert ring_step_count(CollectiveKind.ALL_REDUCE, 4) == 6
        assert ring_step_count(CollectiveKind.ALL_GATHER, 4) == 3

    def test_bad_group_size(self):
        with pytest.raises(ConfigurationError):
            ring_traffic_factor(CollectiveKind.ALL_REDUCE, 0)


class TestCollectiveOp:
    def test_per_link_bytes(self):
        op = CollectiveOp(CollectiveKind.ALL_REDUCE, 8e9, 4)
        assert op.per_link_bytes == pytest.approx(12e9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CollectiveOp(CollectiveKind.ALL_REDUCE, -1.0, 4)
        with pytest.raises(ConfigurationError):
            CollectiveOp(CollectiveKind.ALL_REDUCE, 1.0, 0)


def make_comm(cluster, ranks, **kwargs):
    engine = Engine()
    network = FlowNetwork(engine)
    comm = NcclCommunicator(cluster, engine, network, ranks, **kwargs)
    return engine, network, comm


class TestCommunicatorConstruction:
    def test_node_aware_ordering(self):
        cluster = dual_node_cluster()
        _, _, comm = make_comm(cluster, [5, 0, 4, 1])
        assert comm.ranks == (0, 1, 4, 5)

    def test_spans_nodes(self):
        cluster = dual_node_cluster()
        _, _, intra = make_comm(cluster, [0, 1, 2, 3])
        _, _, inter = make_comm(cluster, [0, 1, 4, 5])
        assert not intra.spans_nodes
        assert inter.spans_nodes

    def test_intra_node_builds_three_rings(self):
        cluster = single_node_cluster()
        _, _, comm = make_comm(cluster, [0, 1, 2, 3])
        assert len(comm.rings) == 3

    def test_inter_node_builds_four_rings(self):
        cluster = dual_node_cluster()
        _, _, comm = make_comm(cluster, list(range(8)))
        assert len(comm.rings) == 4

    def test_duplicate_ranks_rejected(self):
        cluster = single_node_cluster()
        with pytest.raises(ConfigurationError):
            make_comm(cluster, [0, 0, 1])

    def test_empty_ranks_rejected(self):
        cluster = single_node_cluster()
        with pytest.raises(ConfigurationError):
            make_comm(cluster, [])

    def test_launch_overhead_higher_across_nodes(self):
        cluster = dual_node_cluster()
        _, _, intra = make_comm(cluster, [0, 1, 2, 3])
        _, _, inter = make_comm(cluster, list(range(8)))
        assert inter.launch_overhead > intra.launch_overhead

    def test_bad_rate_efficiency_rejected(self):
        cluster = single_node_cluster()
        with pytest.raises(ConfigurationError):
            make_comm(cluster, [0, 1], internode_rate_efficiency=0.0)


class TestCollectiveExecution:
    def test_all_reduce_charges_nvlink(self):
        cluster = single_node_cluster()
        cluster.reset()
        engine, network, comm = make_comm(cluster, [0, 1, 2, 3])
        comm.all_reduce(4e9)
        engine.run()
        nvlink_bytes = sum(
            link.ledger.total_bytes
            for link in cluster.topology.links if link.link_class.value == "NVLink"
        )
        # Ring all-reduce moves 2*(n-1)/n * payload per ring position;
        # summed over all hops of all rings this is rings-independent:
        # n hops x per-link bytes.
        assert nvlink_bytes == pytest.approx(4 * 1.5 * 4e9, rel=1e-3)

    def test_single_rank_collective_is_instant(self):
        cluster = single_node_cluster()
        engine, network, comm = make_comm(cluster, [0])
        event = comm.all_reduce(1e9)
        engine.run()
        assert event.triggered

    def test_mismatched_group_size_rejected(self):
        cluster = single_node_cluster()
        _, _, comm = make_comm(cluster, [0, 1])
        with pytest.raises(ConfigurationError):
            comm.run(CollectiveOp(CollectiveKind.ALL_REDUCE, 1e9, 4))

    def test_launch_count_scales_overhead(self):
        cluster = dual_node_cluster()
        op = CollectiveOp(CollectiveKind.ALL_REDUCE, 1.0, 8)

        def run_with(count):
            engine, network, comm = make_comm(cluster, list(range(8)))
            comm.run(op, launch_count=count)
            return engine.run()

        assert run_with(10) > run_with(1)

    def test_send_recv_moves_payload(self):
        cluster = single_node_cluster()
        cluster.reset()
        engine, network, comm = make_comm(cluster, [0, 1, 2, 3])
        comm.send_recv(0, 1, 2e9)
        engine.run()
        link = cluster.topology.link_between("node0/gpu0", "node0/gpu1")
        assert link.ledger.total_bytes == pytest.approx(2e9)


class TestEstimates:
    def test_estimate_matches_des_order_of_magnitude(self):
        cluster = single_node_cluster()
        engine, network, comm = make_comm(cluster, [0, 1, 2, 3])
        estimate = comm.estimate_all_reduce(4e9)
        done = []
        comm.all_reduce(4e9).add_callback(lambda e: done.append(engine.now))
        engine.run()
        assert done[0] == pytest.approx(estimate, rel=0.5)

    def test_estimate_zero_payload(self):
        cluster = single_node_cluster()
        _, _, comm = make_comm(cluster, [0, 1])
        assert comm.estimate_all_reduce(0.0) == 0.0

    def test_internode_estimate_slower(self):
        dual = dual_node_cluster()
        _, _, inter = make_comm(dual, list(range(8)))
        single = single_node_cluster()
        _, _, intra = make_comm(single, [0, 1, 2, 3])
        assert (inter.estimate_all_reduce(1e9)
                > intra.estimate_all_reduce(1e9))
