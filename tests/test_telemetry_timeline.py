"""Timeline traces and Fig.-5-style rendering."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.kernels import KernelKind
from repro.telemetry.timeline import GLYPHS, Lane, Timeline, TraceRecord
from repro.trace.model import Span
from repro.trace.query import overlap_fraction


@pytest.fixture()
def timeline():
    t = Timeline()
    t.record(0, Lane.COMPUTE, KernelKind.GEMM, "fwd", 0.0, 0.5)
    t.record(0, Lane.COMPUTE, KernelKind.IDLE, "wait", 0.5, 0.7)
    t.record(0, Lane.COMPUTE, KernelKind.OPTIMIZER, "adam", 0.7, 1.0)
    t.record(0, Lane.COMMUNICATION, KernelKind.NCCL_ALL_REDUCE, "ar",
             0.4, 0.7)
    t.record(1, Lane.COMPUTE, KernelKind.GEMM, "fwd", 0.0, 1.0)
    return t


class TestRecords:
    def test_filtering(self, timeline):
        assert len(timeline.records(rank=0)) == 4
        assert len(timeline.records(rank=0, lane=Lane.COMPUTE)) == 3
        assert len(timeline.records(kind=KernelKind.GEMM)) == 2

    def test_span(self, timeline):
        assert timeline.span == (0.0, 1.0)

    def test_empty_span(self):
        assert Timeline().span == (0.0, 0.0)

    def test_reversed_interval_rejected(self):
        t = Timeline()
        with pytest.raises(ConfigurationError):
            t.record(0, Lane.COMPUTE, KernelKind.GEMM, "x", 1.0, 0.5)


class TestSummaries:
    def test_busy_time_by_kind(self, timeline):
        busy = timeline.busy_time_by_kind(0, Lane.COMPUTE)
        assert busy[KernelKind.GEMM] == pytest.approx(0.5)
        assert busy[KernelKind.IDLE] == pytest.approx(0.2)

    def test_compute_busy_fraction_excludes_idle(self, timeline):
        assert timeline.compute_busy_fraction(0) == pytest.approx(0.8)
        assert timeline.compute_busy_fraction(1) == pytest.approx(1.0)

    def test_communication_time(self, timeline):
        assert timeline.communication_time(0) == pytest.approx(0.3)
        assert timeline.communication_time(1) == 0.0

    def test_idle_fraction_is_busy_complement(self, timeline):
        assert timeline.idle_fraction(0) == pytest.approx(0.2)
        assert timeline.idle_fraction(1) == pytest.approx(0.0)

    def test_overlap_fraction_over_timeline_spans(self, timeline):
        # Communication 0.4-0.7 vs non-idle compute 0.0-0.5 + 0.7-1.0:
        # only 0.4-0.5 is hidden.
        assert overlap_fraction(timeline.spans, 0) == pytest.approx(1 / 3)


class TestTraceFacade:
    """Timeline is now a facade over the repro.trace span model."""

    def test_trace_record_is_the_trace_span(self):
        assert TraceRecord is Span

    def test_spans_property_returns_copies(self, timeline):
        spans = timeline.spans
        assert len(spans) == 5
        assert all(isinstance(span, Span) for span in spans)
        spans.clear()
        assert len(timeline.spans) == 5  # the timeline is unaffected

    def test_records_and_spans_agree(self, timeline):
        assert timeline.records() == timeline.spans


class TestRendering:
    def test_render_shape(self, timeline):
        out = timeline.render(0, width=20)
        lines = out.splitlines()
        assert len(lines) == 3  # one per lane
        assert all("|" in line for line in lines)

    def test_render_glyphs(self, timeline):
        out = timeline.render(0, width=10)
        compute_line = out.splitlines()[0]
        assert GLYPHS[KernelKind.GEMM] in compute_line
        assert GLYPHS[KernelKind.OPTIMIZER] in compute_line

    def test_render_window(self, timeline):
        out = timeline.render(0, width=10, window=(0.0, 0.5))
        compute_line = out.splitlines()[0]
        # Pure GEMM inside this window.
        assert GLYPHS[KernelKind.OPTIMIZER] not in compute_line

    def test_render_rejects_bad_width(self, timeline):
        with pytest.raises(ConfigurationError):
            timeline.render(0, width=0)

    def test_legend_mentions_gemm(self, timeline):
        assert "gemm" in timeline.legend()
