"""Resource-lifecycle typestate engine: planted-leak fixtures, the
no-false-positive corpus, and the tree-clean gate for the real source.

Each planted fixture is a tiny module with exactly one acquire/release
slip over the simulator's paired-resource APIs (pool allocate/free,
ledger reserve/settle, cache lock/unlock); the RES passes must catch
each with its distinct ``RES0xx`` code and stay silent on correct
try/finally, context-manager, ownership-escape, and planner shapes.
"""

import textwrap
from pathlib import Path

from repro.analysis import analyze_lifecycle, code_owners
from repro.analysis.lifecycle import (
    PROTOCOLS,
    STATIC_PROTOCOLS,
    analyze_tree,
)


def _analyze(tmp_path, source, name="mod.py"):
    (tmp_path / name).write_text(textwrap.dedent(source))
    return analyze_tree(tmp_path)


def _codes(findings):
    return [f.code for f in findings]


# ---------------------------------------------------------------------------
# Protocol table sanity
# ---------------------------------------------------------------------------

class TestProtocolTable:
    def test_every_static_protocol_pairs_acquire_release(self):
        for protocol in STATIC_PROTOCOLS:
            assert protocol.acquires, protocol.name
            assert protocol.releases, protocol.name

    def test_runtime_only_protocols_are_marked(self):
        static_names = {p.name for p in STATIC_PROTOCOLS}
        assert "flow-epoch" not in static_names
        assert "trace-span" not in static_names
        all_names = {p.name for p in PROTOCOLS}
        assert {"memory-pool", "ledger-reservation", "cache-lock",
                "flow-epoch", "trace-span"} <= all_names

    def test_res_codes_are_owned(self):
        owners = code_owners()
        for code in ("RES001", "RES002", "RES003", "RES004", "RES005",
                     "RES006", "RES010"):
            assert owners[code] == "res-typestate", code
        for code in ("RES007", "RES008", "RES009"):
            assert owners[code] == "leak-sanitizer", code


# ---------------------------------------------------------------------------
# Planted leaks: one distinct RES code each
# ---------------------------------------------------------------------------

class TestPlantedLeaks:
    def test_res001_token_never_released(self, tmp_path):
        findings = _analyze(tmp_path, """
            def leak(ledger, n):
                r = ledger.reserve(n)
                return n * 2
            """)
        assert _codes(findings) == ["RES001"]
        assert "ledger-reservation" in findings[0].message

    def test_res001_label_leaks_when_sibling_freed(self, tmp_path):
        # The intent rule: the function frees *some* pool label, so a
        # label it allocated and never freed is a leak, not a planner.
        findings = _analyze(tmp_path, """
            def swap(pool, n):
                pool.allocate("scratch", n)
                pool.free("other")
            """)
        assert _codes(findings) == ["RES001"]
        assert "scratch" in findings[0].message

    def test_res002_exception_path_skips_release(self, tmp_path):
        findings = _analyze(tmp_path, """
            def charge(ledger, n, sink):
                r = ledger.reserve(n)
                sink.push(n)
                ledger.settle(r)
            """)
        assert _codes(findings) == ["RES002"]
        assert findings[0].subject == "charge"

    def test_res003_double_release(self, tmp_path):
        findings = _analyze(tmp_path, """
            def twice(ledger, n):
                r = ledger.reserve(n)
                ledger.settle(r)
                ledger.settle(r)
            """)
        assert _codes(findings) == ["RES003"]

    def test_res003_interprocedural_through_helper(self, tmp_path):
        # The double release is only visible through the helper's
        # inferred releases-its-parameter summary.
        findings = _analyze(tmp_path, """
            def helper(ledger, r):
                ledger.settle(r)

            def caller(ledger, n):
                r = ledger.reserve(n)
                helper(ledger, r)
                ledger.settle(r)
            """)
        assert "RES003" in _codes(findings)
        double = [f for f in findings if f.code == "RES003"]
        assert double[0].subject == "caller"

    def test_res004_use_after_release(self, tmp_path):
        findings = _analyze(tmp_path, """
            def consume(reservation):
                return reservation

            def stale(ledger, n):
                r = ledger.reserve(n)
                ledger.settle(r)
                consume(r)
            """)
        assert _codes(findings) == ["RES004"]

    def test_res005_release_of_non_handle(self, tmp_path):
        findings = _analyze(tmp_path, """
            def bogus(ledger):
                y = 5
                ledger.settle(y)
            """)
        assert _codes(findings) == ["RES005"]

    def test_res005_free_never_allocated_on_local_pool(self, tmp_path):
        findings = _analyze(tmp_path, """
            def ghost():
                pool = MemoryPool(100)
                pool.free("ghost")
            """)
        assert _codes(findings) == ["RES005"]
        assert "ghost" in findings[0].message

    def test_res006_handle_escapes_with_scope(self, tmp_path):
        findings = _analyze(tmp_path, """
            def sneak(pool, n):
                with pool.lease("slab", n) as scope:
                    r = scope.reserve(5)
                    return r
            """)
        assert _codes(findings) == ["RES006"]

    def test_res010_acquire_result_discarded(self, tmp_path):
        findings = _analyze(tmp_path, """
            def drop(ledger, n):
                ledger.reserve(n)
            """)
        assert _codes(findings) == ["RES010"]

    def test_cache_lock_protocol_is_checked(self, tmp_path):
        findings = _analyze(tmp_path, """
            def hold(cache, key):
                token = cache.lock(key)
                return 1
            """)
        assert _codes(findings) == ["RES001"]
        assert "cache-lock" in findings[0].message


# ---------------------------------------------------------------------------
# No-false-positive corpus: correct lifecycle shapes must stay silent
# ---------------------------------------------------------------------------

class TestNoFalsePositives:
    CORRECT_CORPUS = """
        class Owner:
            def park(self, ledger, n):
                # ownership escape: stored on self, settled elsewhere
                self.pending = ledger.reserve(n)

        def guarded(ledger, n, sink):
            r = ledger.reserve(n)
            try:
                sink.push(n)
            finally:
                ledger.settle(r)

        def scoped(ledger, n, sink):
            with ledger.reserving(n) as r:
                sink.push(n)

        def leased(pool, n, sink):
            with pool.lease("scratch", n):
                sink.push(n)

        def planner(pool, plan):
            # allocate-only planner: frees nothing, so unmatched labels
            # are intent, not leaks (apply_memory_plan's shape)
            for label, size in plan.items():
                pool.allocate(label, size)

        def balanced(pool, n):
            pool.allocate("a", n)
            pool.free("a")

        def rebalance(pool, n):
            # free-then-reacquire of the same label is a legal epoch
            pool.free("a")
            pool.allocate("a", n)
            pool.free("a")

        def maybe(ledger, n, cond):
            r = ledger.reserve(n)
            if cond:
                ledger.settle(r)

        def early_exit(ledger, n):
            if n <= 0:
                return None
            r = ledger.reserve(n)
            ledger.settle(r)
            return n

        def handed_off(ledger, n, registry):
            # appended into a container: ownership moved
            registry.append(ledger.reserve(n))

        def produced(ledger, n):
            r = ledger.reserve(n)
            return r

        def lenient(pool):
            # the documented sentinel path is not a protocol violation
            return pool.free("maybe-there", missing_ok=True)

        def unrelated(names, label):
            # same-named unrelated method, wrong arity: not our settle
            names.settle()
            return len(names)
    """

    def test_correct_corpus_is_silent(self, tmp_path):
        findings = _analyze(tmp_path, self.CORRECT_CORPUS)
        assert findings == [], [
            f"{f.code} {f.location}: {f.message}" for f in findings
        ]


# ---------------------------------------------------------------------------
# The real tree
# ---------------------------------------------------------------------------

class TestOwnTree:
    def test_own_tree_is_clean(self):
        # No baseline waivers: the simulator's own source must conform
        # to its lifecycle protocols outright.
        report = analyze_lifecycle()
        assert "res-typestate" in report.passes_run
        assert report.findings == [], [
            f"{f.code} {f.location}: {f.message}" for f in report.findings
        ]

    def test_analyze_accepts_alternate_root(self, tmp_path):
        (tmp_path / "mod.py").write_text(textwrap.dedent("""
            def leak(ledger, n):
                r = ledger.reserve(n)
                return n
            """))
        report = analyze_lifecycle(root=tmp_path)
        assert _codes(report.findings) == ["RES001"]

    def test_hot_summaries_are_inferred(self):
        # The real acquire/release helpers must be inside the checked
        # universe: spot-check inferred summaries instead of trusting
        # silence.
        from repro.analysis.lifecycle.engine import LifecycleAnalyzer
        import repro

        analyzer = LifecycleAnalyzer(Path(repro.__file__).parent)
        analyzer.infer()
        by_name = analyzer.program.by_name
        assert "apply_memory_plan" in by_name
        assert "release_memory_plan" in by_name
        names = {fn.qualname for module in analyzer.program.modules
                 for fn in module.functions.values()}
        assert any("MemoryPool.lease" in q for q in names)
        assert any("BandwidthLedger.reserving" in q for q in names)
