"""Fluid-flow network: sharing, caps, weights, and ledger accounting."""

import pytest

from repro.hardware import single_node_cluster
from repro.sim.engine import Engine
from repro.sim.flows import FlowNetwork


@pytest.fixture()
def cluster():
    c = single_node_cluster()
    c.reset()
    return c


def run_transfer(cluster, src, dst, num_bytes, count=1, **kwargs):
    engine = Engine()
    network = FlowNetwork(engine)
    route = cluster.topology.route(src, dst)
    times = []
    for _ in range(count):
        event = network.transfer(route, num_bytes, **kwargs)
        event.add_callback(lambda e: times.append(engine.now))
    engine.run()
    return times, network


class TestSingleFlow:
    def test_duration_matches_bandwidth(self, cluster):
        # GPU pair: 4 NVLinks x 25 GB/s x 0.9 = 90 GB/s.
        times, _ = run_transfer(cluster, "node0/gpu0", "node0/gpu1", 9e9)
        assert times[0] == pytest.approx(0.1, rel=1e-3)

    def test_zero_bytes_completes_after_latency(self, cluster):
        route = cluster.topology.route("node0/gpu0", "node0/gpu1")
        engine = Engine()
        network = FlowNetwork(engine)
        event = network.transfer(route, 0.0)
        engine.run()
        assert event.triggered
        assert engine.now == pytest.approx(route.latency())

    def test_loopback_is_instant(self, cluster):
        route = cluster.topology.route("node0/gpu0", "node0/gpu0")
        engine = Engine()
        network = FlowNetwork(engine)
        network.transfer(route, 5e9)
        engine.run()
        assert engine.now == pytest.approx(0.0)

    def test_cap_limits_rate(self, cluster):
        times, _ = run_transfer(cluster, "node0/gpu0", "node0/gpu1", 9e9,
                                cap=9e9)
        assert times[0] == pytest.approx(1.0, rel=1e-3)

    def test_weight_multiplier_scales_attained_rate(self, cluster):
        fast, _ = run_transfer(cluster, "node0/gpu0", "node0/gpu1", 9e9)
        slow, _ = run_transfer(cluster, "node0/gpu0", "node0/gpu1", 9e9,
                               weight_multiplier=3.0)
        assert slow[0] == pytest.approx(3 * fast[0], rel=1e-2)


class TestSharing:
    def test_two_flows_halve_rate(self, cluster):
        times, _ = run_transfer(cluster, "node0/gpu0", "node0/gpu1", 9e9,
                                count=2)
        assert times[-1] == pytest.approx(0.2, rel=1e-2)

    def test_aggregate_is_work_conserving(self, cluster):
        times, network = run_transfer(cluster, "node0/gpu0", "node0/gpu1",
                                      9e9, count=3)
        # 27 GB over a 90 GB/s pool: 0.3 s regardless of flow count.
        assert times[-1] == pytest.approx(0.3, rel=1e-2)

    def test_disjoint_routes_do_not_contend(self, cluster):
        engine = Engine()
        network = FlowNetwork(engine)
        r1 = cluster.topology.route("node0/gpu0", "node0/gpu1")
        r2 = cluster.topology.route("node0/gpu2", "node0/gpu3")
        done = []
        for route in (r1, r2):
            network.transfer(route, 9e9).add_callback(
                lambda e: done.append(engine.now))
        engine.run()
        assert done[-1] == pytest.approx(0.1, rel=1e-2)

    def test_weighted_flow_consumes_more_pool(self, cluster):
        """A weighted flow burns extra pool capacity, so a plain+heavy
        pair finishes later than two plain flows of the same size."""
        def pair_completion(heavy_weight):
            engine = Engine()
            network = FlowNetwork(engine)
            route = cluster.topology.route("node0/gpu0", "node0/gpu1")
            network.transfer(route, 9e9, label="plain")
            network.transfer(route, 9e9, weight_multiplier=heavy_weight,
                             label="second")
            return engine.run()

        assert pair_completion(2.0) > pair_completion(1.0) * 1.2

    def test_opposite_directions_full_duplex(self, cluster):
        engine = Engine()
        network = FlowNetwork(engine)
        fwd = cluster.topology.route("node0/gpu0", "node0/gpu1")
        rev = cluster.topology.route("node0/gpu1", "node0/gpu0")
        done = []
        network.transfer(fwd, 9e9).add_callback(lambda e: done.append(engine.now))
        network.transfer(rev, 9e9).add_callback(lambda e: done.append(engine.now))
        engine.run()
        # Full duplex: both finish as if alone.
        assert done[-1] == pytest.approx(0.1, rel=1e-2)

    def test_half_duplex_dram_shares_one_pool(self, cluster):
        engine = Engine()
        network = FlowNetwork(engine)
        to_dram = cluster.topology.route("node0/gpu0", "node0/dram0")
        from_dram = cluster.topology.route("node0/dram0", "node0/gpu0")
        done = []
        payload = 10e9
        network.transfer(to_dram, payload).add_callback(
            lambda e: done.append(engine.now))
        solo_time = None
        engine.run()
        solo_time = done[-1]
        done.clear()
        engine2 = Engine()
        network2 = FlowNetwork(engine2)
        cluster.reset()
        to_dram = cluster.topology.route("node0/gpu0", "node0/dram0")
        from_dram = cluster.topology.route("node0/dram0", "node0/gpu0")
        network2.transfer(to_dram, payload).add_callback(
            lambda e: done.append(engine2.now))
        network2.transfer(from_dram, payload).add_callback(
            lambda e: done.append(engine2.now))
        engine2.run()
        # DRAM is half duplex: concurrent opposite flows contend there
        # unless PCIe is the bottleneck; they must not finish faster.
        assert done[-1] >= solo_time


class TestLedgers:
    def test_bytes_recorded_on_every_link(self, cluster):
        run_transfer(cluster, "node0/gpu0", "node0/dram0", 5e9)
        route = cluster.topology.route("node0/gpu0", "node0/dram0")
        for link in route.links:
            assert link.ledger.total_bytes == pytest.approx(5e9)

    def test_settle_records_partial_progress(self, cluster):
        engine = Engine()
        network = FlowNetwork(engine)
        route = cluster.topology.route("node0/gpu0", "node0/gpu1")
        network.transfer(route, 900e9)  # 10 s at 90 GB/s
        engine.run(until=1.0)
        network.settle()
        moved = route.links[0].ledger.total_bytes
        assert moved == pytest.approx(90e9, rel=0.05)

    def test_completion_counters(self, cluster):
        _, network = run_transfer(cluster, "node0/gpu0", "node0/gpu1", 1e9,
                                  count=3)
        assert network.completed_flows == 3
        assert network.total_bytes_moved == pytest.approx(3e9)


class TestNumericalRobustness:
    def test_many_small_sequential_transfers_terminate(self, cluster):
        """Regression: fp residue must not stall the clock (zero-dt loop)."""
        engine = Engine()
        network = FlowNetwork(engine)
        route = cluster.topology.route("node0/gpu0", "node0/gpu1")

        def proc():
            for _ in range(200):
                yield network.transfer(route, 54765568.0)  # awkward size

        engine.process(proc())
        engine.run(max_events=200_000)
        assert network.completed_flows == 200
