"""Trace data model: span types, counter tracks, native JSON schema."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.runtime.kernels import KernelKind
from repro.trace.model import (
    TRACE_SCHEMA,
    CollectiveSpan,
    CounterTrack,
    FaultSpan,
    FlowSpan,
    Lane,
    LinkAccount,
    Span,
    Trace,
)


@pytest.fixture()
def trace():
    return Trace(
        meta={"strategy": "ddp", "total_time": 1.0, "iterations": 2},
        spans=[
            Span(0, Lane.COMPUTE, KernelKind.GEMM, "fwd", 0.0, 0.5),
            Span(0, Lane.COMMUNICATION, KernelKind.NCCL_ALL_REDUCE,
                 "ar", 0.4, 0.7),
            Span(1, Lane.COMPUTE, KernelKind.OPTIMIZER, "adam", 0.5, 1.0),
        ],
        collectives=[
            CollectiveSpan("dp", 0, "all_reduce", 1024.0, 2, (0, 1),
                           0.4, 0.7),
        ],
        flows=[
            FlowSpan(7, "grad", "node0.gpu0", "node0.gpu1",
                     ("node0.nvlink.gpu0-gpu1",), 4096.0, 0.4, 0.6),
        ],
        faults=[FaultSpan("down", "node0.nic0", 0.0, 0.2, 0.3)],
        links=[LinkAccount("node0.nvlink.gpu0-gpu1", "nvlink", 4096.0, 1,
                           degraded=((0.2, 0.3),))],
        counters=[CounterTrack("link:node0.nvlink.gpu0-gpu1", "bytes/s",
                               0.0, 0.25, (0.0, 16384.0, 0.0, 0.0))],
    )


class TestLane:
    def test_values_are_stable(self):
        assert int(Lane.COMPUTE) == 0
        assert int(Lane.COMMUNICATION) == 1
        assert int(Lane.HOST_IO) == 2

    def test_str_is_lowercase_name(self):
        assert str(Lane.HOST_IO) == "host_io"

    def test_round_trip_through_str(self):
        for lane in Lane:
            assert Lane[str(lane).upper()] is lane


class TestSpanTypes:
    def test_span_duration(self):
        span = Span(0, Lane.COMPUTE, KernelKind.GEMM, "fwd", 0.25, 0.75)
        assert span.duration == pytest.approx(0.5)

    def test_span_round_trip(self):
        span = Span(3, Lane.HOST_IO, KernelKind.NVME_IO, "swap", 1.5, 2.0)
        again = Span.from_dict(json.loads(json.dumps(span.to_dict())))
        assert again == span
        assert again.lane is Lane.HOST_IO
        assert again.kind is KernelKind.NVME_IO

    def test_collective_round_trip(self):
        coll = CollectiveSpan("dp", 2, "all_gather", 8.5, 4, (0, 1, 2, 3),
                              0.1, 0.2)
        again = CollectiveSpan.from_dict(
            json.loads(json.dumps(coll.to_dict()))
        )
        assert again == coll
        assert again.ranks == (0, 1, 2, 3)

    def test_flow_round_trip_keeps_completed_flag(self):
        flow = FlowSpan(9, "", "a", "b", ("l1", "l2"), 10.0, 0.0, 1.0,
                        completed=False)
        again = FlowSpan.from_dict(json.loads(json.dumps(flow.to_dict())))
        assert again == flow
        assert again.completed is False

    def test_flow_completed_defaults_true(self):
        assert FlowSpan.from_dict({
            "id": 1, "label": "x", "src": "a", "dst": "b", "links": [],
            "bytes": 1.0, "start": 0.0, "end": 1.0,
        }).completed is True

    def test_fault_round_trip(self):
        fault = FaultSpan("degrade", "node0.roce0", 0.5, 1.0, 2.0)
        again = FaultSpan.from_dict(json.loads(json.dumps(fault.to_dict())))
        assert again == fault
        assert again.duration == pytest.approx(1.0)

    def test_link_account_round_trip(self):
        account = LinkAccount("l", "roce", 123.0, 4, ((0.0, 0.5),))
        again = LinkAccount.from_dict(
            json.loads(json.dumps(account.to_dict()))
        )
        assert again == account


class TestCounterTrack:
    def test_rejects_non_positive_period(self):
        with pytest.raises(ConfigurationError):
            CounterTrack("c", "bytes/s", 0.0, 0.0, (1.0,))
        with pytest.raises(ConfigurationError):
            CounterTrack("c", "bytes/s", 0.0, -1.0, (1.0,))

    def test_end_and_integral(self):
        track = CounterTrack("c", "bytes/s", 1.0, 0.5, (2.0, 4.0, 6.0))
        assert track.end == pytest.approx(2.5)
        assert track.integral() == pytest.approx(6.0)

    def test_round_trip(self):
        track = CounterTrack("c", "bytes", 0.0, 0.1, (1.0, 2.0))
        again = CounterTrack.from_dict(
            json.loads(json.dumps(track.to_dict()))
        )
        assert again == track


class TestTraceQueries:
    def test_ranks(self, trace):
        assert trace.ranks == [0, 1]

    def test_span_bounds(self, trace):
        assert trace.span_bounds == (0.0, 1.0)
        assert Trace().span_bounds == (0.0, 0.0)

    def test_link_account_lookup(self, trace):
        assert trace.link_account("node0.nvlink.gpu0-gpu1").total_bytes \
            == 4096.0
        assert trace.link_account("nope") is None

    def test_counter_lookup(self, trace):
        assert trace.counter("link:node0.nvlink.gpu0-gpu1").unit == "bytes/s"
        assert trace.counter("nope") is None

    def test_per_link_bytes(self, trace):
        assert trace.per_link_bytes() == {"node0.nvlink.gpu0-gpu1": 4096.0}

    def test_flow_bytes_by_link_charges_every_traversed_link(self):
        trace = Trace(flows=[
            FlowSpan(1, "", "a", "c", ("l1", "l2"), 10.0, 0.0, 1.0),
            FlowSpan(2, "", "a", "b", ("l1",), 5.0, 0.0, 1.0),
        ])
        assert trace.flow_bytes_by_link() == {"l1": 15.0, "l2": 10.0}


class TestTraceSerialization:
    def test_round_trip_is_lossless(self, trace):
        again = Trace.from_dict(json.loads(json.dumps(trace.to_dict())))
        assert again.meta == trace.meta
        assert again.spans == trace.spans
        assert again.collectives == trace.collectives
        assert again.flows == trace.flows
        assert again.faults == trace.faults
        assert again.links == trace.links
        assert again.counters == trace.counters

    def test_schema_tag_present(self, trace):
        assert trace.to_dict()["schema"] == TRACE_SCHEMA

    def test_unknown_schema_rejected(self, trace):
        data = trace.to_dict()
        data["schema"] = "repro-trace/999"
        with pytest.raises(ConfigurationError):
            Trace.from_dict(data)
        with pytest.raises(ConfigurationError):
            Trace.from_dict({})

    def test_empty_sections_tolerated(self):
        trace = Trace.from_dict({"schema": TRACE_SCHEMA})
        assert trace.spans == [] and trace.links == []
