"""Public API surface: the names README/docs promise must exist."""

import pytest

import repro


class TestTopLevel:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_path(self):
        """The exact imports the README quickstart uses."""
        from repro import RunSpec, model_for_billions, run_spec
        from repro.hardware import single_node_cluster
        from repro.parallel import zero2
        assert callable(run_spec)
        assert RunSpec is not None
        assert callable(model_for_billions)
        assert callable(single_node_cluster)
        assert callable(zero2)

    def test_run_training_shim_removed(self):
        """The deprecated top-level alias now fails loudly, with a map."""
        with pytest.raises(ImportError, match="repro.core.run_training"):
            from repro import run_training  # noqa: F401
        with pytest.raises(ImportError, match="run_spec"):
            repro.run_training
        assert "run_training" not in repro.__all__
        # Unknown names still raise a plain AttributeError.
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_positional_runner_still_importable(self):
        """The replacement the error message points at actually works."""
        import warnings

        from repro import model_for_billions
        from repro.core import run_training
        from repro.hardware import single_node_cluster
        from repro.parallel import zero2

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            metrics = run_training(single_node_cluster(), zero2(),
                                   model_for_billions(0.7), iterations=2)
        assert metrics.tflops > 0
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]

    def test_exceptions_subclass_base(self):
        for name in ("ConfigurationError", "OutOfMemoryError",
                     "CapabilityError", "SimulationError", "TopologyError"):
            err = getattr(repro, name)
            assert issubclass(err, repro.ReproError)


class TestSubpackageSurfaces:
    @pytest.mark.parametrize("module_name", [
        "repro.hardware", "repro.sim", "repro.model", "repro.collectives",
        "repro.parallel", "repro.runtime", "repro.telemetry", "repro.stress",
        "repro.workloads", "repro.core", "repro.experiments",
    ])
    def test_all_exports_resolve(self, module_name):
        import importlib
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.{name}"

    def test_strategy_factories_cover_paper_configs(self):
        from repro.experiments.common import ALL_STRATEGIES
        expected = {
            "ddp", "megatron", "zero1", "zero2", "zero3",
            "zero1_opt_cpu", "zero2_opt_cpu", "zero3_opt_cpu_param_cpu",
            "zero3_opt_nvme", "zero3_opt_nvme_param_nvme",
        }
        assert expected <= set(ALL_STRATEGIES)

    def test_every_module_has_docstring(self):
        import importlib
        import pkgutil

        undocumented = []
        package = importlib.import_module("repro")
        for info in pkgutil.walk_packages(package.__path__, "repro."):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                undocumented.append(info.name)
        assert not undocumented, undocumented
