"""Tree-algorithm collectives and the ring/tree AUTO heuristic."""

import pytest

from repro.collectives import (
    Algorithm,
    CollectiveKind,
    CollectiveOp,
    NcclCommunicator,
    TREE_PAYLOAD_THRESHOLD,
    choose_algorithm,
    tree_depth,
    tree_edges,
    tree_step_count,
)
from repro.errors import ConfigurationError
from repro.hardware import dual_node_cluster, single_node_cluster
from repro.sim.engine import Engine
from repro.sim.flows import FlowNetwork


class TestChooseAlgorithm:
    def test_explicit_choices_respected(self):
        assert choose_algorithm(Algorithm.RING, CollectiveKind.ALL_REDUCE,
                                10.0) is Algorithm.RING
        assert choose_algorithm(Algorithm.TREE, CollectiveKind.ALL_REDUCE,
                                1e9) is Algorithm.TREE

    def test_auto_picks_tree_for_small_payloads(self):
        assert choose_algorithm(Algorithm.AUTO, CollectiveKind.ALL_REDUCE,
                                1024) is Algorithm.TREE
        assert choose_algorithm(Algorithm.AUTO, CollectiveKind.ALL_REDUCE,
                                100e6) is Algorithm.RING

    def test_threshold_boundary(self):
        assert choose_algorithm(Algorithm.AUTO, CollectiveKind.ALL_REDUCE,
                                TREE_PAYLOAD_THRESHOLD) is Algorithm.TREE
        assert choose_algorithm(Algorithm.AUTO, CollectiveKind.ALL_REDUCE,
                                TREE_PAYLOAD_THRESHOLD + 1) is Algorithm.RING

    def test_gather_scatter_always_ring(self):
        for kind in (CollectiveKind.ALL_GATHER,
                     CollectiveKind.REDUCE_SCATTER,
                     CollectiveKind.SEND_RECV):
            assert choose_algorithm(Algorithm.TREE, kind,
                                    10.0) is Algorithm.RING


class TestTreeShape:
    def test_depth(self):
        assert tree_depth(1) == 0
        assert tree_depth(2) == 1
        assert tree_depth(8) == 3
        assert tree_depth(9) == 4

    def test_depth_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            tree_depth(0)

    def test_edges_form_a_tree(self):
        order = tuple(range(8))
        edges = tree_edges(order)
        assert len(edges) == 7  # n - 1
        children = [child for child, _parent in edges]
        assert len(set(children)) == 7  # every non-root exactly once
        assert 0 not in children        # rank 0 is the root

    def test_steps(self):
        assert tree_step_count(CollectiveKind.ALL_REDUCE, 8) == 6
        assert tree_step_count(CollectiveKind.BROADCAST, 8) == 3


class TestTreeExecution:
    def run_collective(self, cluster, payload, algorithm):
        engine = Engine()
        network = FlowNetwork(engine)
        comm = NcclCommunicator(cluster, engine, network,
                                list(range(cluster.num_gpus)))
        op = CollectiveOp(CollectiveKind.ALL_REDUCE, payload,
                          cluster.num_gpus)
        comm.run(op, algorithm=algorithm)
        return engine.run()

    def test_tree_beats_ring_for_small_internode_payloads(self):
        cluster = dual_node_cluster()
        ring = self.run_collective(cluster, 64e3, Algorithm.RING)
        tree = self.run_collective(cluster, 64e3, Algorithm.TREE)
        assert tree < ring

    def test_ring_beats_tree_for_large_payloads(self):
        cluster = dual_node_cluster()
        ring = self.run_collective(cluster, 64e6, Algorithm.RING)
        tree = self.run_collective(cluster, 64e6, Algorithm.TREE)
        assert ring < tree

    def test_auto_matches_the_better_choice_at_extremes(self):
        cluster = dual_node_cluster()
        small_auto = self.run_collective(cluster, 64e3, Algorithm.AUTO)
        small_tree = self.run_collective(cluster, 64e3, Algorithm.TREE)
        assert small_auto == pytest.approx(small_tree, rel=1e-6)
        big_auto = self.run_collective(cluster, 64e6, Algorithm.AUTO)
        big_ring = self.run_collective(cluster, 64e6, Algorithm.RING)
        assert big_auto == pytest.approx(big_ring, rel=1e-6)

    def test_tree_charges_edge_traffic(self):
        cluster = single_node_cluster()
        cluster.reset()
        engine = Engine()
        network = FlowNetwork(engine)
        comm = NcclCommunicator(cluster, engine, network, [0, 1, 2, 3])
        payload = 4e6
        comm.run(CollectiveOp(CollectiveKind.ALL_REDUCE, payload, 4),
                 algorithm=Algorithm.TREE)
        engine.run()
        total = sum(l.ledger.total_bytes
                    for l in cluster.topology.links
                    if l.link_class.value == "NVLink")
        # 3 edges x 2 x payload (reduce up + broadcast down).
        assert total == pytest.approx(3 * 2 * payload, rel=1e-6)


class TestEstimateConsistency:
    def test_estimate_mirrors_auto_selection(self):
        """estimate() and run() must agree on the schedule for a payload."""
        cluster = dual_node_cluster()
        for payload in (64e3, 8e6):
            engine = Engine()
            network = FlowNetwork(engine)
            comm = NcclCommunicator(cluster, engine, network, list(range(8)))
            estimate = comm.estimate(
                CollectiveOp(CollectiveKind.ALL_REDUCE, payload, 8))
            comm.run(CollectiveOp(CollectiveKind.ALL_REDUCE, payload, 8))
            actual = engine.run()
            assert actual == pytest.approx(estimate, rel=0.5)
