"""Internal consistency of the transcribed paper data."""

from repro.core.search import PAPER_SIZE_GRID
from repro.experiments import paper_data
from repro.experiments.common import ALL_STRATEGIES


class TestTableV:
    def test_all_sizes_on_grid(self):
        for config, cells in paper_data.TABLE_V.items():
            for size in cells:
                assert size in PAPER_SIZE_GRID, (config, size)

    def test_configs_are_known_strategies(self):
        for config in paper_data.TABLE_V:
            assert config in ALL_STRATEGIES

    def test_max_sizes_match_fig6_and_fig13(self):
        assert max(paper_data.TABLE_V["ddp"]) == \
            paper_data.ACHIEVED_SIZE_SINGLE_NODE_B["ddp"]
        assert max(paper_data.TABLE_V["megatron"]) == \
            paper_data.ACHIEVED_SIZE_SINGLE_NODE_B["megatron"]
        assert max(paper_data.TABLE_V["zero3"]) == \
            paper_data.ACHIEVED_SIZE_SINGLE_NODE_B["zero3"]
        assert max(paper_data.TABLE_V["zero3_opt_nvme"]) == \
            paper_data.PLACEMENT_MODEL_B


class TestCrossReferences:
    def test_fig7_covers_fig6_strategies(self):
        assert (set(paper_data.THROUGHPUT_SINGLE_NODE)
                == set(paper_data.ACHIEVED_SIZE_SINGLE_NODE_B))
        assert (set(paper_data.THROUGHPUT_DUAL_NODE)
                == set(paper_data.ACHIEVED_SIZE_DUAL_NODE_B))

    def test_dual_node_always_fits_at_least_single(self):
        for name, single in paper_data.ACHIEVED_SIZE_SINGLE_NODE_B.items():
            assert paper_data.ACHIEVED_SIZE_DUAL_NODE_B[name] >= single

    def test_table_vi_keys(self):
        assert set(paper_data.TABLE_VI) == set("ABCDEFG")
        for cells in paper_data.TABLE_VI.values():
            assert {"tflops", "xgmi_avg", "pcie_nvme_avg"} <= set(cells)

    def test_iteration_times_cover_fig5_configs(self):
        from repro.experiments.fig05_timeline import CONFIGS
        assert set(CONFIGS) == set(paper_data.ITERATION_TIME_1P4B_S)

    def test_consolidation_throughput_consistent_with_fig7(self):
        assert (paper_data.CONSOLIDATION_THROUGHPUT["megatron_dual"]
                == paper_data.THROUGHPUT_DUAL_NODE["megatron"])

    def test_stress_fractions_in_unit_interval(self):
        for value in paper_data.STRESS_ATTAINED_FRACTION.values():
            assert 0.0 < value <= 1.0

    def test_nvlink_peaks_exceed_averages(self):
        for avg, peak in paper_data.NVLINK_SINGLE_NODE.values():
            assert peak >= avg
