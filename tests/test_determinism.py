"""Determinism subsystem: tie orders, schedule sanitizer, DET lints,
and the perturbation differ."""

import json
import textwrap

import pytest

from repro.analysis import analyze_source
from repro.analysis.determinism import sanitizer_findings
from repro.analysis.determinism.differ import (
    diff_headline_runs,
    headline_fields,
    perturbation_diff,
    round_sig,
)
from repro.core.runner import run_training
from repro.core.search import model_for_billions
from repro.experiments.common import make_strategy
from repro.hardware import single_node_cluster
from repro.sim.engine import Engine, ReversedTies, SeededTies, TieOrder
from repro.sim.sanitizer import ScheduleSanitizer


# ---------------------------------------------------------------------------
# Tie-order policies on the bare engine
# ---------------------------------------------------------------------------

class TestTieOrders:
    def _order_with(self, tie_order, count=8):
        engine = Engine(tie_order=tie_order)
        seen = []
        for value in range(count):
            engine.schedule_at(1.0, seen.append, value)
        engine.run()
        return seen

    def test_fifo_preserves_insertion_order(self):
        assert self._order_with(TieOrder()) == list(range(8))

    def test_reversed_ties_reverse_same_timestamp_callbacks(self):
        assert self._order_with(ReversedTies()) == list(range(7, -1, -1))

    def test_seeded_ties_permute_reproducibly(self):
        first = self._order_with(SeededTies(7))
        again = self._order_with(SeededTies(7))
        assert first == again
        assert sorted(first) == list(range(8))
        assert first != list(range(8))  # actually permutes

    def test_different_seeds_differ(self):
        assert self._order_with(SeededTies(7)) != self._order_with(
            SeededTies(8))

    def test_timestamps_still_dominate_tie_keys(self):
        engine = Engine(tie_order=ReversedTies())
        seen = []
        engine.schedule_at(2.0, seen.append, "late")
        engine.schedule_at(1.0, seen.append, "early")
        engine.run()
        assert seen == ["early", "late"]


# ---------------------------------------------------------------------------
# Schedule sanitizer
# ---------------------------------------------------------------------------

class TestScheduleSanitizer:
    def test_tie_conflict_detected(self):
        engine = Engine()
        sanitizer = ScheduleSanitizer(engine)

        def toucher():
            engine.note_touch("ledger:test-link")

        engine.schedule_at(1.0, toucher)
        engine.schedule_at(1.0, toucher)
        engine.schedule_at(2.0, toucher)  # alone at its stamp: not a tie
        engine.run()
        report = sanitizer.finalize()
        assert report.events_observed == 3
        assert report.tie_groups == 1
        assert report.events_in_ties == 2
        assert report.conflict_groups == 1
        assert report.conflicts[0].resources == ["ledger:test-link"]
        assert report.conflicts[0].group_size == 2
        assert not report.clean

    def test_tied_callbacks_on_distinct_resources_are_not_conflicts(self):
        engine = Engine()
        sanitizer = ScheduleSanitizer(engine)
        engine.schedule_at(1.0, lambda: engine.note_touch("a"))
        engine.schedule_at(1.0, lambda: engine.note_touch("b"))
        engine.run()
        report = sanitizer.finalize()
        assert report.tie_groups == 1
        assert report.conflict_groups == 0
        assert report.clean

    def test_note_touch_without_sanitizer_is_a_noop(self):
        engine = Engine()
        engine.schedule_at(1.0, lambda: engine.note_touch("x"))
        engine.run()  # must not raise

    def test_capacity_audit_flags_double_booked_link(self):
        cluster = single_node_cluster()
        link = cluster.topology.links[0]
        ceiling = link.max_capacity_over(0.0, 1.0)
        link.ledger.record(0.0, 1.0, ceiling * 2.0)
        report = ScheduleSanitizer(Engine()).finalize(cluster)
        assert report.capacity_violations
        assert link.name in report.capacity_violations[0]
        codes = [f.code for f in sanitizer_findings(report)]
        assert "DET110" in codes

    def test_in_budget_ledger_is_clean(self):
        cluster = single_node_cluster()
        link = cluster.topology.links[0]
        link.ledger.record(0.0, 1.0, link.max_capacity_over(0.0, 1.0) * 0.5)
        report = ScheduleSanitizer(Engine()).finalize(cluster)
        assert report.capacity_violations == []

    def test_report_round_trips_through_json(self):
        engine = Engine()
        sanitizer = ScheduleSanitizer(engine)
        engine.schedule_at(1.0, lambda: engine.note_touch("r"))
        engine.schedule_at(1.0, lambda: engine.note_touch("r"))
        engine.run()
        payload = json.loads(json.dumps(sanitizer.finalize().to_dict()))
        assert payload["conflict_groups"] == 1
        assert payload["clean"] is False

    def test_sanitized_training_run_attaches_report(self):
        cluster = single_node_cluster()
        metrics = run_training(cluster, make_strategy("ddp"),
                               model_for_billions(0.7), iterations=2,
                               sanitize=True)
        report = metrics.sanitizer
        assert report is not None
        assert report.events_observed > 0
        assert report.capacity_violations == []

    def test_unsanitized_run_has_no_report(self):
        cluster = single_node_cluster()
        metrics = run_training(cluster, make_strategy("ddp"),
                               model_for_billions(0.7), iterations=2)
        assert metrics.sanitizer is None


# ---------------------------------------------------------------------------
# DET0xx static passes on fixture trees
# ---------------------------------------------------------------------------

class TestDetLints:
    def _det_findings(self, tmp_path, source, name="mod.py"):
        (tmp_path / name).write_text(textwrap.dedent(source))
        report = analyze_source(tmp_path)
        return [f for f in report.findings if f.code.startswith("DET")]

    def test_set_iteration_with_accumulation_flagged(self, tmp_path):
        findings = self._det_findings(
            tmp_path,
            """
            def drain(flows, rates):
                pending = set(flows)
                for flow in pending:
                    rates[flow] += 1.0
            """)
        assert [f.code for f in findings] == ["DET001"]
        assert "'pending'" in findings[0].message
        assert findings[0].location == "mod.py:4"

    def test_sum_over_set_generator_flagged(self, tmp_path):
        findings = self._det_findings(
            tmp_path,
            """
            residuals = {0.125, 0.25}
            TOTAL = sum(value for value in residuals)
            """)
        assert [f.code for f in findings] == ["DET001"]
        assert "sum()" in findings[0].message

    def test_scheduling_from_set_iteration_flagged(self, tmp_path):
        findings = self._det_findings(
            tmp_path,
            """
            def arm(engine, callback):
                targets = {1.0, 2.0}
                for when in targets:
                    engine.schedule_at(when, callback)
            """)
        assert [f.code for f in findings] == ["DET001"]
        assert "schedule_at" in findings[0].message

    def test_list_iteration_is_clean(self, tmp_path):
        findings = self._det_findings(
            tmp_path,
            """
            def drain(flows, rates):
                for flow in sorted(flows):
                    rates[flow] += 1.0
            """)
        assert findings == []

    def test_set_pop_flagged(self, tmp_path):
        findings = self._det_findings(
            tmp_path,
            """
            ready = set()

            def next_item():
                return ready.pop()
            """)
        assert [f.code for f in findings] == ["DET002"]

    def test_dict_pop_with_key_is_clean(self, tmp_path):
        findings = self._det_findings(
            tmp_path,
            """
            table = {}

            def take(key):
                return table.pop(key)
            """)
        assert findings == []

    def test_unseeded_module_random_flagged_as_error(self, tmp_path):
        findings = self._det_findings(
            tmp_path,
            """
            import random

            def jitter():
                return random.random()
            """)
        assert [f.code for f in findings] == ["DET010"]
        assert findings[0].severity.name == "ERROR"

    def test_module_level_seed_suppresses_det010(self, tmp_path):
        findings = self._det_findings(
            tmp_path,
            """
            import random

            random.seed(7)

            def jitter():
                return random.random()
            """)
        assert findings == []

    def test_unseeded_random_instance_warned(self, tmp_path):
        findings = self._det_findings(
            tmp_path,
            """
            import random

            RNG = random.Random()
            """)
        assert [f.code for f in findings] == ["DET011"]

    def test_seeded_random_instance_is_clean(self, tmp_path):
        findings = self._det_findings(
            tmp_path,
            """
            import random

            RNG = random.Random(1234)
            """)
        assert findings == []

    def test_wall_clock_reads_flagged(self, tmp_path):
        findings = self._det_findings(
            tmp_path,
            """
            import time
            from datetime import datetime

            def stamp_pair():
                return time.time(), datetime.now()
            """)
        codes = [f.code for f in findings]
        assert codes == ["DET020", "DET020"]

    def test_id_ordering_flagged(self, tmp_path):
        findings = self._det_findings(
            tmp_path,
            """
            def settle(events):
                return sorted(events, key=id)

            def first(events):
                return min(events, key=lambda e: (id(e), 0))
            """)
        assert [f.code for f in findings] == ["DET030", "DET030"]

    def test_stable_sort_key_is_clean(self, tmp_path):
        findings = self._det_findings(
            tmp_path,
            """
            def settle(events):
                return sorted(events, key=lambda e: e.seq)
            """)
        assert findings == []

    def test_mutable_default_argument_flagged(self, tmp_path):
        findings = self._det_findings(
            tmp_path,
            """
            def fire(callbacks=[], *, extras={}):
                callbacks.extend(extras)
            """)
        assert [f.code for f in findings] == ["DET040", "DET040"]

    def test_clean_simulation_module_passes_every_det_lint(self, tmp_path):
        findings = self._det_findings(
            tmp_path,
            """
            import random


            class Clock:
                def __init__(self, engine, seed):
                    self.engine = engine
                    self.rng = random.Random(seed)

                def drain(self, flows, rates):
                    for flow in sorted(flows, key=lambda f: f.seq):
                        rates[flow] = self.engine.now
            """)
        assert findings == []

    def test_only_sim_packages_are_scanned(self, tmp_path):
        racy = "pending = set()\n\nfor item in pending:\n    item += 1\n"
        (tmp_path / "sim").mkdir()
        (tmp_path / "analysis").mkdir()
        (tmp_path / "sim" / "mod.py").write_text(racy)
        (tmp_path / "analysis" / "mod.py").write_text(racy)
        report = analyze_source(tmp_path)
        locations = [f.location for f in report.findings
                     if f.code == "DET001"]
        assert locations == ["sim/mod.py:3"]


# ---------------------------------------------------------------------------
# The planted race: one hazard caught by BOTH halves of the detector
# ---------------------------------------------------------------------------

#: A genuine set-iteration race: 0 and 8 collide in a small set's hash
#: table, so iteration order follows insertion order, and the nonlinear
#: fold makes that order observable.  The two ``add`` calls are tied at
#: t=1.0, so the tie order *is* the insertion order.
RACY_FIXTURE = '''\
shared = set()
total = 0.0


def add(value):
    shared.add(value)


def fold():
    global total
    for value in shared:
        total += total / 2.0 + value
'''


class TestPlantedRace:
    def test_static_pass_flags_the_planted_race(self, tmp_path):
        (tmp_path / "racy.py").write_text(RACY_FIXTURE)
        report = analyze_source(tmp_path)
        codes = [f.code for f in report.findings]
        assert "DET001" in codes

    def test_differ_confirms_the_planted_race(self):
        def run(order):
            engine = Engine(tie_order=order)
            namespace = {}
            exec(compile(RACY_FIXTURE, "racy_fixture.py", "exec"), namespace)
            engine.schedule_at(1.0, namespace["add"], 0)
            engine.schedule_at(1.0, namespace["add"], 8)
            engine.schedule_at(2.0, namespace["fold"])
            engine.run()
            return {"total": namespace["total"]}

        diffs, orders = diff_headline_runs(run, seed=11)
        assert orders == ["reversed", "seeded[11]"]
        assert diffs and all(d.field == "total" for d in diffs)
        assert diffs[0].baseline != diffs[0].perturbed

    def test_differ_refutes_an_order_invariant_fold(self):
        # The flows.py _compute_rates shape: iterating a set but adding
        # the same delta to every member — order cannot matter, and the
        # differ must not cry wolf.
        def run(order):
            engine = Engine(tie_order=order)
            rates = {"a": 0.0, "b": 0.0}
            members = {"a", "b"}

            def bump():
                for member in members:
                    rates[member] += 1.5

            engine.schedule_at(1.0, bump)
            engine.schedule_at(1.0, bump)
            engine.run()
            return rates

        diffs, _ = diff_headline_runs(run, seed=11)
        assert diffs == []


# ---------------------------------------------------------------------------
# Perturbation differ on real training configurations
# ---------------------------------------------------------------------------

class TestPerturbationDiffer:
    def test_round_sig(self):
        assert round_sig(123.4567891, 6) == 123.457
        assert round_sig(0.0) == 0.0
        assert round_sig(1e-12) == 1e-12

    def test_headline_fields_cover_ledgers(self):
        cluster = single_node_cluster()
        metrics = run_training(cluster, make_strategy("ddp"),
                               model_for_billions(0.7), iterations=2)
        fields = headline_fields(metrics, cluster)
        assert "iteration_time_s" in fields
        assert "tflops" in fields
        assert any(key.startswith("ledger[") and key.endswith(".bytes")
                   for key in fields)

    def test_ddp_smoke_config_is_race_free(self):
        result = perturbation_diff("ddp", size_billions=0.7, nodes=2,
                                   iterations=2, seed=7)
        assert result.orders == ["reversed", "seeded[7]"]
        assert result.fields_compared > 10
        assert result.diffs == [], [d.to_dict() for d in result.diffs]
        assert not result.races_confirmed
        sanitizer = result.sanitizer
        assert sanitizer is not None
        assert sanitizer.capacity_violations == []
        report = result.report()
        assert report.ok  # suspects are warnings; no confirmed races
        assert "DET120" not in [f.code for f in report.findings]
        json.dumps(result.to_dict())  # artifact shape is serializable

    def test_confirmed_race_becomes_det120_error(self):
        result = perturbation_diff("ddp", size_billions=0.7, nodes=1,
                                   iterations=2, seed=7)
        from repro.analysis.determinism.differ import FieldDiff
        result.diffs.append(FieldDiff(
            field="tflops", baseline=1.0, perturbed=2.0, order="reversed"))
        report = result.report()
        assert not report.ok
        assert "DET120" in [f.code for f in report.errors]
