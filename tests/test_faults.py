"""Fault-injection subsystem: spec parsing, resolution, injection,
end-to-end determinism."""

import json

import pytest

from repro.core.runner import run_training
from repro.core.search import model_for_billions
from repro.errors import FaultPlanError
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    parse_fault_spec,
    parse_time,
    plan_problems,
    resolve_target,
)
from repro.hardware import single_node_cluster
from repro.parallel import zero2
from repro.sim.engine import Engine
from repro.sim.flows import FlowNetwork


# --- time and spec parsing ----------------------------------------------------
class TestParseTime:
    @pytest.mark.parametrize("text,expected", [
        ("2ms", 2e-3),
        ("1.5s", 1.5),
        ("300us", 3e-4),
        ("5ns", 5e-9),
        ("0.25", 0.25),
        ("1e-3", 1e-3),
    ])
    def test_units(self, text, expected):
        assert parse_time(text) == pytest.approx(expected)

    @pytest.mark.parametrize("text", ["", "fast", "2 minutes", "3kg", "-1s"])
    def test_rejects_garbage(self, text):
        with pytest.raises(FaultPlanError):
            parse_time(text)


class TestParseFaultSpec:
    def test_acceptance_spec(self):
        event = parse_fault_spec("node0.nic0:down@t=2ms,dur=1ms")
        assert event.target == "node0/nic0"
        assert event.kind is FaultKind.LINK_DOWN
        assert event.start == pytest.approx(2e-3)
        assert event.duration == pytest.approx(1e-3)
        assert event.magnitude == 1.0

    def test_degrade_with_magnitude(self):
        event = parse_fault_spec("switch0:degrade@t=0.1,dur=1s,mag=0.5")
        assert event.kind is FaultKind.LINK_DEGRADE
        assert event.magnitude == 0.5

    def test_flap_with_period(self):
        event = parse_fault_spec("switch0:flap@t=10ms,dur=200ms,period=40ms")
        assert event.kind is FaultKind.LINK_FLAP
        assert event.period == pytest.approx(40e-3)

    @pytest.mark.parametrize("alias,kind", [
        ("slow", FaultKind.GPU_STRAGGLER),
        ("straggler", FaultKind.GPU_STRAGGLER),
        ("nvme", FaultKind.NVME_SLOWDOWN),
        ("nvme_slow", FaultKind.NVME_SLOWDOWN),
    ])
    def test_kind_aliases(self, alias, kind):
        assert parse_fault_spec(f"rank0:{alias}@t=0,dur=1").kind is kind

    @pytest.mark.parametrize("spec", [
        "node0/nic0:down",                     # no @fields
        "node0/nic0@t=0,dur=1",                # no :kind
        "node0/nic0:explode@t=0,dur=1",        # unknown kind
        "node0/nic0:down@t=0,dur=1,color=red", # unknown field
        "node0/nic0:down@t=0",                 # missing dur
        "node0/nic0:down@dur=1",               # missing t
        "node0/nic0:down@t=0,dur=",            # empty value
        "node0/nic0:down@t=0,dur=1,mag=big",   # bad magnitude
    ])
    def test_rejects_malformed(self, spec):
        with pytest.raises(FaultPlanError):
            parse_fault_spec(spec)


# --- plans --------------------------------------------------------------------
class TestFaultPlan:
    def test_parse_span_and_len(self):
        plan = FaultPlan.parse(
            ["node0/nic0:down@t=2ms,dur=1ms", "rank0:slow@t=0,dur=5ms"],
            seed=7,
        )
        assert len(plan) == 2
        assert plan.span == pytest.approx(5e-3)
        assert plan.seed == 7

    def test_horizon_must_be_positive(self):
        with pytest.raises(FaultPlanError):
            FaultPlan(horizon=0.0)

    def test_noop_events_are_dropped(self):
        plan = FaultPlan.parse(["node0/xgmi:degrade@t=0,dur=1,mag=0"])
        assert plan.materialize() == []

    def test_flap_expansion_is_seed_deterministic(self):
        specs = ["switch0:flap@t=0,dur=1s,period=100ms"]
        first = FaultPlan.parse(specs, seed=42).materialize()
        second = FaultPlan.parse(specs, seed=42).materialize()
        other = FaultPlan.parse(specs, seed=43).materialize()
        assert first == second
        assert first != other

    def test_flap_windows_stay_inside_envelope(self):
        plan = FaultPlan.parse(["switch0:flap@t=10ms,dur=200ms,period=40ms"],
                               seed=3)
        windows = plan.materialize()
        assert windows
        for window in windows:
            assert window.kind is FaultKind.LINK_DOWN
            assert window.start >= 10e-3 - 1e-12
            assert window.end <= 210e-3 + 1e-12

    def test_materialized_events_are_sorted(self):
        plan = FaultPlan.parse([
            "rank0:slow@t=5ms,dur=1ms",
            "node0/xgmi:degrade@t=1ms,dur=1ms,mag=0.5",
        ])
        starts = [event.start for event in plan.materialize()]
        assert starts == sorted(starts)

    def test_to_dict_round_trips_fields(self):
        plan = FaultPlan.parse(["node0.nic0:down@t=2ms,dur=1ms"], seed=7,
                               horizon=1.0)
        payload = plan.to_dict()
        assert payload["seed"] == 7
        assert payload["horizon"] == 1.0
        assert payload["events"][0]["target"] == "node0/nic0"


# --- target resolution --------------------------------------------------------
class TestResolveTarget:
    @pytest.fixture()
    def cluster(self):
        return single_node_cluster()

    def _event(self, target, kind):
        return FaultEvent(target=target, kind=kind, start=0.0, duration=1.0)

    def test_link_by_name(self, cluster):
        resolved = resolve_target(
            cluster, self._event("node0/xgmi", FaultKind.LINK_DOWN))
        assert [link.name for link in resolved.links] == ["node0/xgmi"]

    def test_device_blast_radius(self, cluster):
        resolved = resolve_target(
            cluster, self._event("node0/gpu0", FaultKind.LINK_DEGRADE))
        assert len(resolved.links) > 1
        for link in resolved.links:
            assert "node0/" in link.name

    def test_straggler_by_rank(self, cluster):
        resolved = resolve_target(
            cluster, self._event("rank2", FaultKind.GPU_STRAGGLER))
        assert resolved.rank == 2

    def test_straggler_by_gpu_name(self, cluster):
        name = cluster.gpu(1).name
        resolved = resolve_target(
            cluster, self._event(name, FaultKind.GPU_STRAGGLER))
        assert resolved.rank == 1

    def test_nvme_by_drive_name(self, cluster):
        name = cluster.nodes[0].nvme_drives[0].name
        resolved = resolve_target(
            cluster, self._event(name, FaultKind.NVME_SLOWDOWN))
        assert resolved.drive is cluster.nodes[0].nvme_drives[0]

    @pytest.mark.parametrize("target,kind", [
        ("node9/nic0", FaultKind.LINK_DOWN),
        ("rank99", FaultKind.GPU_STRAGGLER),
        ("node0/xgmi", FaultKind.GPU_STRAGGLER),
        ("node0/gpu0", FaultKind.NVME_SLOWDOWN),
    ])
    def test_bad_targets_raise(self, cluster, target, kind):
        with pytest.raises(FaultPlanError):
            resolve_target(cluster, self._event(target, kind))

    def test_plan_problems_reports_instead_of_raising(self, cluster):
        plan = FaultPlan.parse(
            ["node9/nic0:down@t=0,dur=1ms", "rank0:slow@t=0,dur=2s"],
            horizon=1.0,
        )
        problems = plan_problems(cluster, plan)
        assert len(problems) == 2  # bad target + horizon overrun
        assert any("node9/nic0" in p for p in problems)
        assert any("horizon" in p for p in problems)


# --- injector state machine ---------------------------------------------------
class TestInjector:
    def _injector(self, cluster, specs, seed=0):
        engine = Engine()
        network = FlowNetwork(engine)
        plan = FaultPlan.parse(specs, seed=seed)
        return engine, FaultInjector(plan, cluster, engine, network)

    def test_overlapping_link_faults_stack_multiplicatively(self):
        cluster = single_node_cluster()
        engine, _ = self._injector(cluster, [
            "node0/xgmi:degrade@t=1,dur=2,mag=0.5",
            "node0/xgmi:degrade@t=2,dur=2,mag=0.5",
        ])
        link = next(l for l in cluster.topology.links
                    if l.name == "node0/xgmi")
        observed = {}
        for probe_at in (1.5, 2.5, 3.5, 4.5):
            engine.schedule_at(
                probe_at,
                lambda t=probe_at: observed.__setitem__(
                    t, link.capacity_fraction),
            )
        engine.run()
        assert observed[1.5] == pytest.approx(0.5)
        assert observed[2.5] == pytest.approx(0.25)   # both active
        assert observed[3.5] == pytest.approx(0.5)    # first reverted
        assert observed[4.5] == pytest.approx(1.0)    # fully restored

    def test_straggler_factors_stack_and_revert(self):
        cluster = single_node_cluster()
        engine, injector = self._injector(cluster, [
            "rank0:slow@t=1,dur=2,mag=0.5",
            "rank0:slow@t=2,dur=2,mag=0.5",
        ])
        observed = {}
        for probe_at in (0.5, 1.5, 2.5, 4.5):
            engine.schedule_at(
                probe_at,
                lambda t=probe_at: observed.__setitem__(
                    t, injector.compute_multiplier(0)),
            )
        engine.run()
        assert observed[0.5] == pytest.approx(1.0)
        assert observed[1.5] == pytest.approx(1.5)
        assert observed[2.5] == pytest.approx(2.25)
        assert observed[4.5] == pytest.approx(1.0)

    def test_down_pins_capacity_to_zero(self):
        cluster = single_node_cluster()
        engine, _ = self._injector(
            cluster, ["node0/xgmi:down@t=1,dur=1,mag=0.25"])
        link = next(l for l in cluster.topology.links
                    if l.name == "node0/xgmi")
        observed = {}
        engine.schedule_at(
            1.5, lambda: observed.__setitem__("dark", link.capacity_fraction))
        engine.run()
        assert observed["dark"] == 0.0
        assert link.capacity_fraction == 1.0

    def test_empty_plan_registers_no_start_hook(self):
        cluster = single_node_cluster()
        _, injector = self._injector(
            cluster, ["node0/xgmi:degrade@t=0,dur=1,mag=0"])
        assert not injector.has_faults

    def test_bad_plan_fails_before_the_run(self):
        cluster = single_node_cluster()
        with pytest.raises(FaultPlanError):
            self._injector(cluster, ["node9/nic0:down@t=0,dur=1ms"])


# --- end-to-end determinism ---------------------------------------------------
def _run_payload(specs=None, seed=0):
    """One full run reduced to a JSON string: byte-equality == identical."""
    cluster = single_node_cluster()
    plan = FaultPlan.parse(specs, seed=seed) if specs is not None else None
    metrics = run_training(cluster, zero2(), model_for_billions(0.7),
                           iterations=2, fault_plan=plan)
    payload = {
        "iteration_times": metrics.execution.iteration_times,
        "total_time": metrics.execution.total_time,
        "tflops": metrics.throughput.tflops,
        "ledgers": {link.name: link.ledger.total_bytes
                    for link in cluster.topology.links},
    }
    return json.dumps(payload, sort_keys=True)


FAULTED_SPECS = [
    "node0/gpu0:flap@t=50ms,dur=200ms,period=40ms,mag=0.8",
    "rank1:slow@t=0,dur=1s,mag=0.5",
]


class TestDeterminism:
    def test_seeded_faulted_runs_are_bit_identical(self):
        first = _run_payload(FAULTED_SPECS, seed=7)
        second = _run_payload(FAULTED_SPECS, seed=7)
        assert first == second

    def test_fault_free_runs_are_bit_identical(self):
        assert _run_payload() == _run_payload()

    def test_zero_magnitude_plan_matches_fault_free(self):
        zeroed = _run_payload(
            ["node0/gpu0:degrade@t=50ms,dur=200ms,mag=0",
             "rank1:slow@t=0,dur=1s,mag=0"],
        )
        assert zeroed == _run_payload()

    def test_faults_actually_change_the_run(self):
        assert _run_payload(FAULTED_SPECS, seed=7) != _run_payload()
