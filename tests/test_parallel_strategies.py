"""Strategy memory plans and schedule structure."""

import pytest

from repro.collectives import CollectiveKind
from repro.errors import ConfigurationError
from repro.hardware import dual_node_cluster, single_node_cluster
from repro.model import OffloadTarget, TrainingConfig, ZeroStage, paper_model
from repro.parallel import (
    CollectiveStep,
    ComputeStep,
    CpuWorkStep,
    DdpStrategy,
    HostTransferStep,
    IdleStep,
    MegatronStrategy,
    WaitForStep,
    WaitPendingStep,
    ZeroStrategy,
    zero1,
    zero2,
    zero2_cpu_offload,
    zero3,
    zero3_nvme_optimizer,
    zero3_nvme_optimizer_params,
)
from repro.parallel.strategy import StrategyContext


@pytest.fixture(scope="module")
def ctx():
    return StrategyContext(single_node_cluster(), paper_model(26),
                           TrainingConfig())


@pytest.fixture(scope="module")
def dual_ctx():
    return StrategyContext(dual_node_cluster(), paper_model(26),
                           TrainingConfig())


def steps_of(strategy, ctx, step_type):
    schedule = strategy.build_schedule(ctx)
    return [s for s in schedule.steps_by_rank[0] if isinstance(s, step_type)]


class TestDegrees:
    def test_ddp_is_pure_data_parallel(self, ctx):
        s = DdpStrategy()
        assert s.data_parallel_degree(ctx) == 4
        assert s.model_parallel_degree(ctx) == 1

    def test_megatron_is_pure_model_parallel(self, dual_ctx):
        s = MegatronStrategy()
        assert s.data_parallel_degree(dual_ctx) == 1
        assert s.model_parallel_degree(dual_ctx) == 8

    def test_zero_is_data_parallel(self, ctx):
        assert zero3().data_parallel_degree(ctx) == 4


class TestMemoryPlans:
    def test_per_gpu_bytes_ordering(self, ctx):
        """At fixed size: DDP > ZeRO-1 > ZeRO-2 > ZeRO-3 per-GPU *model
        states* (framework buffers differ per stage and are excluded)."""
        def states(strategy):
            plan = strategy.memory_plan(ctx)
            return (plan.gpu.get("parameters", 0.0)
                    + plan.gpu.get("gradients", 0.0)
                    + plan.gpu.get("optimizer_states", 0.0))
        ddp, z1, z2, z3 = (states(s) for s in (
            DdpStrategy(), zero1(), zero2(), zero3()))
        assert ddp > z1 > z2 > z3

    def test_megatron_divides_states(self, ctx):
        plan = MegatronStrategy().memory_plan(ctx)
        states = (plan.gpu["parameters"] + plan.gpu["gradients"]
                  + plan.gpu["optimizer_states"])
        assert states == pytest.approx(16 * ctx.total_params / 4)

    def test_every_plan_includes_activations_and_buffers(self, ctx):
        for s in (DdpStrategy(), MegatronStrategy(), zero1(), zero2(),
                  zero3()):
            plan = s.memory_plan(ctx)
            assert plan.gpu["activations"] > 0
            assert plan.gpu["framework_buffers"] > 0
            assert plan.cpu["host_baseline"] > 0

    def test_cpu_offload_moves_optimizer_to_host(self, ctx):
        plan = zero2_cpu_offload().memory_plan(ctx)
        assert plan.gpu.get("optimizer_states", 0.0) == 0.0
        assert plan.cpu["optimizer_states"] > 0
        assert plan.cpu["pinned_buffers"] > 0

    def test_nvme_offload_places_optimizer_on_nvme(self, ctx):
        plan = zero3_nvme_optimizer().memory_plan(ctx)
        assert plan.nvme["optimizer_states"] > 0
        assert plan.cpu["nvme_staging"] > 0

    def test_param_nvme_adds_staging(self, ctx):
        plan = zero3_nvme_optimizer_params().memory_plan(ctx)
        assert plan.nvme["parameters"] > 0
        assert plan.cpu["param_staging"] > 0


class TestZeroConstruction:
    def test_stage0_rejected(self):
        with pytest.raises(ConfigurationError):
            ZeroStrategy(ZeroStage.DISABLED)

    def test_capability_enforced_at_construction(self):
        from repro.errors import CapabilityError
        with pytest.raises(CapabilityError):
            ZeroStrategy(ZeroStage.OPTIMIZER,
                         optimizer_target=OffloadTarget.NVME)

    def test_names(self):
        assert zero2().name == "zero2"
        assert zero2_cpu_offload().name == "zero2_opt_cpu"
        assert zero3_nvme_optimizer_params().name == \
            "zero3_opt_nvme_param_nvme"
        assert "CPU" in zero2_cpu_offload().display_name
        assert "NVME" in zero3_nvme_optimizer().display_name


class TestScheduleShapes:
    def test_ddp_uses_all_reduce_only(self, ctx):
        collectives = steps_of(DdpStrategy(), ctx, CollectiveStep)
        kinds = {c.kind for c in collectives}
        assert kinds == {CollectiveKind.ALL_REDUCE}

    def test_ddp_gradient_sync_is_overlapped(self, ctx):
        collectives = steps_of(DdpStrategy(), ctx, CollectiveStep)
        assert all(not c.blocking for c in collectives)

    def test_zero1_all_gathers_updated_params(self, ctx):
        collectives = steps_of(zero1(), ctx, CollectiveStep)
        kinds = [c.kind for c in collectives]
        assert kinds.count(CollectiveKind.ALL_GATHER) == 1
        assert collectives[-1].kind is CollectiveKind.ALL_GATHER
        assert collectives[-1].blocking

    def test_zero2_reduces_instead_of_all_reduce(self, ctx):
        collectives = steps_of(zero2(), ctx, CollectiveStep)
        grad_kinds = {c.kind for c in collectives if "grad" in c.key}
        assert grad_kinds == {CollectiveKind.REDUCE}

    def test_zero3_gathers_params_per_layer(self, ctx):
        collectives = steps_of(zero3(), ctx, CollectiveStep)
        gathers = [c for c in collectives
                   if c.kind is CollectiveKind.ALL_GATHER]
        scatters = [c for c in collectives
                    if c.kind is CollectiveKind.REDUCE_SCATTER]
        # forward + backward gathers per layer; reduce-scatter per layer
        # plus one for the embedding/head gradients.
        assert len(gathers) == 2 * 26
        assert len(scatters) == 26 + 1

    def test_zero3_forward_prefetch_uses_waits(self, ctx):
        waits = steps_of(zero3(), ctx, WaitForStep)
        assert len(waits) == 26

    def test_zero3_comm_volume_increase(self, ctx):
        """ZeRO-3 moves ~1.5x DDP's gradient volume (the published 50%)."""
        def volume(strategy):
            return sum(
                c.payload_bytes * {
                    CollectiveKind.ALL_REDUCE: 2.0,
                    CollectiveKind.REDUCE: 1.0,
                    CollectiveKind.REDUCE_SCATTER: 1.0,
                    CollectiveKind.ALL_GATHER: 1.0,
                    CollectiveKind.BROADCAST: 1.0,
                    CollectiveKind.SEND_RECV: 1.0,
                }[c.kind]
                for c in steps_of(strategy, ctx, CollectiveStep)
            )
        assert volume(zero3()) == pytest.approx(1.5 * volume(DdpStrategy()),
                                                rel=0.05)

    def test_megatron_all_reduces_are_blocking(self, ctx):
        collectives = steps_of(MegatronStrategy(), ctx, CollectiveStep)
        tp = [c for c in collectives if c.kind is CollectiveKind.ALL_REDUCE]
        assert tp and all(c.blocking for c in tp)

    def test_megatron_has_pipeline_bubbles(self, ctx):
        idles = steps_of(MegatronStrategy(), ctx, IdleStep)
        assert len(idles) == 2  # fill + drain
        assert all(i.duration > 0 for i in idles)

    def test_megatron_micro_batch_count(self, ctx):
        """Fig. 5: one forward/backward pair per model-parallel rank."""
        computes = steps_of(MegatronStrategy(), ctx, ComputeStep)
        heads = [c for c in computes if c.name.startswith("lm_head_fwd")]
        assert len(heads) == 4

    def test_offload_schedule_has_cpu_work_and_transfers(self, ctx):
        strategy = zero2_cpu_offload()
        cpu_steps = steps_of(strategy, ctx, CpuWorkStep)
        transfers = steps_of(strategy, ctx, HostTransferStep)
        assert len(cpu_steps) == 1
        assert cpu_steps[0].num_params == pytest.approx(ctx.total_params / 4)
        assert any(t.name == "updated_params_to_gpu" for t in transfers)

    def test_nvme_schedule_has_swaps(self, ctx):
        strategy = zero3_nvme_optimizer()
        transfers = steps_of(strategy, ctx, HostTransferStep)
        names = {t.name for t in transfers}
        assert "optimizer_swap_in" in names
        assert "optimizer_swap_out" in names

    def test_all_schedules_validate(self, ctx, dual_ctx):
        for context in (ctx, dual_ctx):
            for s in (DdpStrategy(), MegatronStrategy(), zero1(), zero2(),
                      zero3(), zero2_cpu_offload(), zero3_nvme_optimizer()):
                s.build_schedule(context).validate()

    def test_wait_pending_present_for_overlapped_strategies(self, ctx):
        for s in (DdpStrategy(), zero1(), zero2(), zero3()):
            assert steps_of(s, ctx, WaitPendingStep)


class TestLayerTimings:
    def test_per_rank_layer_time_is_strategy_efficiency_dependent(self, ctx):
        ddp_t = DdpStrategy().layer_timings(ctx)
        z2_t = zero2().layer_timings(ctx)
        # ZeRO-2 has a higher calibrated GEMM efficiency than DDP... per
        # layer it is therefore faster.
        assert z2_t.fwd_layer < ddp_t.fwd_layer

    def test_backward_is_twice_forward(self, ctx):
        t = DdpStrategy().layer_timings(ctx)
        assert t.bwd_layer == pytest.approx(2 * t.fwd_layer)

    def test_recompute_matches_forward(self, ctx):
        t = DdpStrategy().layer_timings(ctx)
        assert t.recompute_layer == pytest.approx(t.fwd_layer)
