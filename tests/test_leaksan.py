"""Runtime leak sanitizer: observer hooks, teardown audits, the
cross-validation joint with the static RES findings, and the
leak-checked end-to-end run.

The sanitizer is the dynamic half of the RES family: the typestate
passes prove acquire/release conformance per function, these tests pin
that a conforming *run* really ends with zero outstanding pool/ledger
balance — and that a planted runtime leak is reported, not papered
over.
"""

import pytest

from repro.analysis.findings import Finding, Severity
from repro.api import RunSpec, run_spec
from repro.core.runner import run_training
from repro.errors import ConfigurationError, SimulationError
from repro.hardware import single_node_cluster
from repro.hardware.devices import MemoryPool
from repro.hardware.link import BandwidthLedger
from repro.model import paper_model
from repro.parallel import DdpStrategy, zero2
from repro.sim.leaksan import (
    MAX_RECORDED_LEAKS,
    LeakRecord,
    LeakReport,
    LeakSanitizer,
    cross_validate,
)
from repro.units import GB


@pytest.fixture()
def cluster():
    c = single_node_cluster()
    c.reset()
    return c


class TestLedgerReservations:
    def test_reserve_settle_balances(self):
        ledger = BandwidthLedger()
        r = ledger.reserve(10 * GB, owner="test")
        assert ledger.outstanding_bytes == 10 * GB
        ledger.settle(r)
        assert ledger.outstanding_bytes == 0
        assert ledger.open_reservations() == []

    def test_double_settle_raises(self):
        ledger = BandwidthLedger()
        r = ledger.reserve(1.0)
        ledger.settle(r)
        with pytest.raises(ConfigurationError) as err:
            ledger.settle(r)
        assert "already settled" in str(err.value)

    def test_cancel_then_settle_raises(self):
        ledger = BandwidthLedger()
        r = ledger.reserve(1.0)
        ledger.cancel(r)
        with pytest.raises(ConfigurationError):
            ledger.settle(r)

    def test_settle_of_non_token_raises(self):
        ledger = BandwidthLedger()
        with pytest.raises(ConfigurationError):
            ledger.settle("not a token")

    def test_reserving_settles_on_exception(self):
        ledger = BandwidthLedger()
        with pytest.raises(RuntimeError):
            with ledger.reserving(5.0, owner="guard"):
                raise RuntimeError("boom")
        assert ledger.outstanding_reservations == 0

    def test_reservations_never_gate_record(self):
        # Ownership bookkeeping, not admission control: charging more
        # bytes than reserved must not fail or alter the records.
        ledger = BandwidthLedger()
        ledger.reserve(1.0, owner="tiny")
        ledger.record(0.0, 1.0, 100.0)
        assert ledger.total_bytes == 100.0


class TestLeakSanitizerUnit:
    def test_clean_report_after_balanced_pool_use(self, cluster):
        san = LeakSanitizer()
        san.attach(cluster)
        pool = cluster.gpu(0).memory
        pool.allocate("x", 10.0)
        pool.free("x")
        report = san.finalize(cluster)
        assert report.clean
        assert report.pool_events == 2
        assert report.pools_audited > 0
        report.assert_clean()  # must not raise

    def test_outstanding_pool_balance_is_res007(self, cluster):
        san = LeakSanitizer()
        san.attach(cluster)
        cluster.gpu(0).memory.allocate("leaked", 3 * GB)
        report = san.finalize(cluster)
        assert not report.clean
        assert [r.code for r in report.records] == ["RES007"]
        assert report.records[0].protocol == "memory-pool"
        assert "leaked" in report.records[0].detail
        assert report.leaked_bytes == 3 * GB
        with pytest.raises(SimulationError) as err:
            report.assert_clean()
        assert "outstanding" in str(err.value)

    def test_runtime_double_free_is_res008(self, cluster):
        san = LeakSanitizer()
        san.attach(cluster)
        pool = cluster.gpu(0).memory
        pool.allocate("once", 1.0)
        pool.free("once")
        with pytest.raises(ConfigurationError):
            pool.free("once")
        report = san.finalize(cluster)
        assert [r.code for r in report.records] == ["RES008"]
        assert "double-free" in report.records[0].detail

    def test_free_after_fault_revert_is_res008(self, cluster):
        # A fault-recovery path that resets the pool and then replays a
        # stale free: the label epoch is gone, the free must surface as
        # a protocol error rather than silently succeed.
        san = LeakSanitizer()
        san.attach(cluster)
        pool = cluster.gpu(0).memory
        pool.allocate("epoch", 2.0)
        pool.reset()  # fault revert drops every label
        with pytest.raises(ConfigurationError):
            pool.free("epoch")
        report = san.finalize(cluster)
        assert [r.code for r in report.records] == ["RES008"]

    def test_outstanding_ledger_reservation_is_res007(self, cluster):
        san = LeakSanitizer()
        san.attach(cluster)
        link = cluster.topology.links[0]
        link.ledger.reserve(4 * GB, owner="forgotten")
        report = san.finalize(cluster)
        assert [r.code for r in report.records] == ["RES007"]
        assert report.records[0].protocol == "ledger-reservation"
        assert report.records[0].resource == link.name
        assert "forgotten" in report.records[0].detail

    def test_unknown_flow_close_is_res008(self, cluster):
        class FakeFlow:
            id = 99

        san = LeakSanitizer()
        san.flow_closed(FakeFlow(), 1.0)
        assert [r.code for r in san.report.records] == ["RES008"]
        assert san.report.records[0].protocol == "flow-epoch"

    def test_recording_cap_counts_suppressed(self, cluster):
        san = LeakSanitizer()
        for i in range(MAX_RECORDED_LEAKS + 5):
            san._record(LeakRecord(
                protocol="memory-pool", code="RES007",
                resource=f"pool{i}", detail="x"))
        assert len(san.report.records) == MAX_RECORDED_LEAKS
        assert san.report.suppressed == 5
        assert not san.report.clean

    def test_report_round_trips_and_exports_findings(self):
        report = LeakReport(records=[LeakRecord(
            protocol="memory-pool", code="RES007", resource="gpu0",
            detail="label 'x' holds 1.0 GB", amount_bytes=GB)])
        payload = report.to_dict()
        assert payload["clean"] is False
        assert payload["leaked_bytes"] == GB
        findings = report.findings()
        assert findings[0].code == "RES007"
        assert findings[0].severity == Severity.WARNING


class TestLeakCheckedRun:
    def test_run_training_leak_check_is_clean(self, cluster):
        metrics = run_training(cluster, DdpStrategy(), paper_model(4),
                               iterations=3, leak_check=True, trace=True)
        report = metrics.leaks
        assert report is not None
        assert report.clean, report.to_dict()
        assert report.pools_audited > 0
        assert report.ledgers_audited > 0
        assert report.flows_tracked > 0
        assert report.reservations_opened >= report.flows_tracked
        # zero outstanding balance everywhere after teardown
        for link in cluster.topology.links:
            assert link.ledger.outstanding_bytes == 0

    def test_hybrid_quick_spec_ends_balanced(self):
        spec = RunSpec("zero2", size_billions=0.5, iterations=6,
                       warmup_iterations=1, fidelity="hybrid",
                       leak_check=True)
        metrics = run_spec(spec)
        assert metrics.leaks is not None
        assert metrics.leaks.clean, metrics.leaks.to_dict()
        metrics.leaks.assert_clean()

    def test_leak_check_is_schedule_invariant(self):
        c1 = single_node_cluster()
        c1.reset()
        checked = run_training(c1, zero2(), paper_model(8), iterations=3,
                               leak_check=True)
        c2 = single_node_cluster()
        c2.reset()
        plain = run_training(c2, zero2(), paper_model(8), iterations=3)
        assert checked.execution.iteration_times == \
            plain.execution.iteration_times
        assert plain.leaks is None

    def test_leaks_surface_in_results_payload(self, cluster):
        from repro.core.results import metrics_to_dict
        metrics = run_training(cluster, DdpStrategy(), paper_model(4),
                               iterations=2, leak_check=True)
        payload = metrics_to_dict(metrics)
        assert payload["leaks"]["clean"] is True
        plain_cluster = single_node_cluster()
        plain_cluster.reset()
        plain = run_training(plain_cluster, DdpStrategy(), paper_model(4),
                             iterations=2)
        assert metrics_to_dict(plain)["leaks"] is None

    def test_memory_snapshot_survives_teardown(self, cluster):
        # The leak-check teardown frees the plan labels; the reported
        # memory snapshot must still show the plan's residency.
        metrics = run_training(cluster, DdpStrategy(), paper_model(4),
                               iterations=2, leak_check=True)
        assert metrics.memory.gpu_used > 0
        assert "parameters" in metrics.memory.gpu_by_label


class TestCrossValidation:
    @staticmethod
    def _static(code, message, location="core/runner.py:10"):
        return Finding("res-typestate", Severity.ERROR, code, message,
                       subject="f", location=location)

    def test_corroborated_leak(self):
        report = LeakReport(records=[LeakRecord(
            protocol="memory-pool", code="RES007", resource="gpu0",
            detail="leak")])
        static = [self._static(
            "RES001", "memory-pool label 'x' never freed")]
        verdicts = cross_validate(static, report)
        assert [v.code for v in verdicts] == ["RES009"]
        assert "corroborated" in verdicts[0].message

    def test_dynamic_only_leak(self):
        report = LeakReport(records=[LeakRecord(
            protocol="flow-epoch", code="RES007", resource="flow:3",
            detail="still active")])
        verdicts = cross_validate([], report)
        assert [v.code for v in verdicts] == ["RES009"]
        assert "dynamic-only" in verdicts[0].message

    def test_static_without_runtime_counterpart(self):
        static = [self._static(
            "RES002", "ledger-reservation token leaks on the "
            "exception path")]
        verdicts = cross_validate(static, LeakReport())
        assert [v.code for v in verdicts] == ["RES009"]
        assert "latent" in verdicts[0].message

    def test_clean_everywhere_is_silent(self):
        assert cross_validate([], LeakReport()) == []
