"""Discrete-event engine: events, timeouts, processes, combinators."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine


class TestTimeouts:
    def test_clock_advances(self):
        engine = Engine()
        engine.timeout(1.5)
        engine.run()
        assert engine.now == pytest.approx(1.5)

    def test_ordering_is_fifo_within_same_time(self):
        engine = Engine()
        order = []
        engine.schedule_at(1.0, lambda: order.append("a"))
        engine.schedule_at(1.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b"]

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.timeout(-1.0)

    def test_schedule_in_past_rejected(self):
        engine = Engine()
        engine.schedule_at(5.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(1.0, lambda: None)

    def test_run_until_stops_early(self):
        engine = Engine()
        fired = []
        engine.schedule_at(10.0, lambda: fired.append(1))
        engine.run(until=5.0)
        assert not fired
        assert engine.now == pytest.approx(5.0)

    def test_peek(self):
        engine = Engine()
        assert engine.peek() is None
        engine.schedule_at(3.0, lambda: None)
        assert engine.peek() == pytest.approx(3.0)

    def test_step_on_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Engine().step()

    def test_max_events_guard(self):
        engine = Engine()

        def reschedule():
            engine.schedule_at(engine.now, reschedule)

        engine.schedule_at(0.0, reschedule)
        with pytest.raises(SimulationError):
            engine.run(max_events=100)


class TestEvents:
    def test_succeed_delivers_value(self):
        engine = Engine()
        event = engine.event()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        event.succeed("payload")
        assert seen == ["payload"]

    def test_double_succeed_rejected(self):
        engine = Engine()
        event = engine.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_callback_after_trigger_fires_immediately(self):
        engine = Engine()
        event = engine.event()
        event.succeed(42)
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == [42]


class TestCombinators:
    def test_all_of_waits_for_every_child(self):
        engine = Engine()
        t1 = engine.timeout(1.0, "a")
        t2 = engine.timeout(2.0, "b")
        combined = engine.all_of([t1, t2])
        done_at = []
        combined.add_callback(lambda e: done_at.append(engine.now))
        engine.run()
        assert done_at == [pytest.approx(2.0)]

    def test_all_of_value_order(self):
        engine = Engine()
        t1 = engine.timeout(2.0, "slow")
        t2 = engine.timeout(1.0, "fast")
        combined = engine.all_of([t1, t2])
        engine.run()
        assert combined.value == ["slow", "fast"]

    def test_all_of_empty_fires_immediately(self):
        engine = Engine()
        combined = engine.all_of([])
        engine.run()
        assert combined.triggered

    def test_any_of_fires_on_first(self):
        engine = Engine()
        t1 = engine.timeout(1.0, "fast")
        t2 = engine.timeout(5.0, "slow")
        first = engine.any_of([t1, t2])
        done_at = []
        first.add_callback(lambda e: done_at.append((engine.now, e.value)))
        engine.run()
        assert done_at[0] == (pytest.approx(1.0), "fast")

    def test_any_of_empty_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.any_of([])


class TestProcesses:
    def test_process_sequences_timeouts(self):
        engine = Engine()
        marks = []

        def proc():
            yield engine.timeout(1.0)
            marks.append(engine.now)
            yield engine.timeout(2.0)
            marks.append(engine.now)

        engine.process(proc())
        engine.run()
        assert marks == [pytest.approx(1.0), pytest.approx(3.0)]

    def test_process_return_value(self):
        engine = Engine()

        def proc():
            yield engine.timeout(1.0)
            return "done"

        handle = engine.process(proc())
        engine.run()
        assert handle.value == "done"

    def test_processes_wait_on_each_other(self):
        engine = Engine()
        log = []

        def worker():
            yield engine.timeout(2.0)
            return "result"

        def boss():
            value = yield engine.process(worker())
            log.append((engine.now, value))

        engine.process(boss())
        engine.run()
        assert log == [(pytest.approx(2.0), "result")]

    def test_yielding_non_event_raises(self):
        engine = Engine()

        def bad():
            yield 42

        engine.process(bad())
        with pytest.raises(SimulationError):
            engine.run()

    def test_events_processed_counter(self):
        engine = Engine()
        engine.timeout(1.0)
        engine.timeout(2.0)
        engine.run()
        assert engine.events_processed == 2


class TestBatchFolding:
    def _handler(self, singles, folds):
        from repro.sim.engine import BatchHandler

        def single(tag):
            singles.append(tag)

        def fold(batch):
            folds.append([args[0] for args in batch])

        return BatchHandler(single, fold)

    def test_same_time_run_folds_once(self):
        engine = Engine()
        singles, folds = [], []
        handler = self._handler(singles, folds)
        for tag in range(5):
            engine.schedule_at(1.0, handler, tag)
        engine.run()
        assert folds == [[0, 1, 2, 3, 4]]
        assert singles == []

    def test_folded_events_count_at_original_multiplicity(self):
        engine = Engine()
        handler = self._handler([], [])
        for tag in range(5):
            engine.schedule_at(1.0, handler, tag)
        engine.schedule_at(2.0, handler, 99)
        engine.run()
        # A fold of 5 still adds 5 to events_processed; the lone
        # occurrence at t=2 dispatches singly.
        assert engine.events_processed == 6
        assert engine.events_folded == 4

    def test_different_timestamps_do_not_fold(self):
        engine = Engine()
        singles, folds = [], []
        handler = self._handler(singles, folds)
        engine.schedule_at(1.0, handler, "a")
        engine.schedule_at(2.0, handler, "b")
        engine.run()
        assert singles == ["a", "b"]
        assert folds == []
        assert engine.events_folded == 0

    def test_different_handlers_do_not_fold(self):
        engine = Engine()
        singles, folds = [], []
        first = self._handler(singles, folds)
        second = self._handler(singles, folds)
        engine.schedule_at(1.0, first, "a")
        engine.schedule_at(1.0, second, "b")
        engine.run()
        assert singles == ["a", "b"]
        assert folds == []

    def test_fold_events_off_dispatches_singly(self):
        engine = Engine()
        engine.fold_events = False
        singles, folds = [], []
        handler = self._handler(singles, folds)
        for tag in range(3):
            engine.schedule_at(1.0, handler, tag)
        engine.run()
        assert singles == [0, 1, 2]
        assert folds == []
        assert engine.events_processed == 3

    def test_plain_callbacks_never_fold(self):
        engine = Engine()
        seen = []
        for tag in range(3):
            engine.schedule_at(1.0, lambda tag=tag: seen.append(tag))
        engine.run()
        assert seen == [0, 1, 2]
        assert engine.events_folded == 0


class TestLivenessInstrumentation:
    def test_engine_registers_named_processes(self):
        engine = Engine()

        def worker():
            yield engine.timeout(1.0)

        handle = engine.process(worker(), name="worker")
        assert handle in engine.processes
        engine.run()
        assert handle.triggered

    def test_waiting_on_breadcrumb_tracks_current_event(self):
        engine = Engine()
        gate = engine.event()

        def worker():
            yield engine.timeout(1.0)
            yield gate

        handle = engine.process(worker(), name="worker")
        engine.run(until=2.0)
        assert handle.waiting_on is gate

    def test_waiting_on_cleared_after_completion(self):
        engine = Engine()

        def worker():
            yield engine.timeout(1.0)

        handle = engine.process(worker())
        engine.run()
        assert handle.waiting_on is None

    def test_anyof_detaches_from_losing_children(self):
        engine = Engine()
        fast = engine.timeout(1.0)
        slow = engine.timeout(10.0)
        race = engine.any_of([fast, slow])
        triggered_values = []
        race.add_callback(lambda e: triggered_values.append(e.value))
        engine.run()
        assert len(triggered_values) == 1
        # once the race is decided, the loser carries no stale callbacks
        assert not slow.callbacks

    def test_allof_reports_pending_children(self):
        engine = Engine()
        never = engine.event()
        barrier = engine.all_of([engine.timeout(1.0), never])
        engine.run()
        assert not barrier.triggered
        assert barrier.num_children == 2
        assert barrier.pending_children == [never]
